//! Schema backtracing (Section 5.1).
//!
//! Starting from the why-not NIP over the query's output schema, backtracing
//! walks the plan top-down and computes, for every operator, the NIP over that
//! operator's *output* that characterizes tuples able to contribute to the
//! missing answer. The NIPs assigned to the table-access operators are the
//! per-input-relation NIPs `T` of the paper; the NIPs at intermediate
//! operators are what the data-tracing step uses to *re-validate* consistency
//! (the paper's second key technique).
//!
//! Backtracing is purely schema-level (data independent). Constraints on
//! aggregate results or computed columns cannot be pushed through exactly;
//! following the paper's heuristic spirit, a lower-bound constraint (e.g.
//! `revenue > 0`) is translated into "the aggregated attributes must
//! contribute non-null values", which is what rules out, for instance, blaming
//! an inner join whose outer variant could only contribute null-padded (and
//! hence zero-revenue) tuples (scenario Q10).

use std::collections::BTreeMap;

use nested_data::{AttrPath, NestedType, Nip, NipCmp, Sym, TupleType, Value};
use nrab_algebra::expr::Expr;
use nrab_algebra::schema::output_type;
use nrab_algebra::{Database, OpId, OpNode, Operator, QueryPlan};

use crate::error::WhyNotResult;

/// The result of schema backtracing.
#[derive(Debug, Clone)]
pub struct BacktraceResult {
    /// For each operator, the NIP over its output.
    pub consistency: BTreeMap<OpId, Nip>,
    /// For each operator, the attribute paths referenced by its parameters
    /// (the associations `op.A → X` of the mapping `M_sbt`).
    pub op_attribute_refs: BTreeMap<OpId, Vec<AttrPath>>,
    /// The per-input-relation NIPs `T`: `(table access op, relation name, NIP)`.
    pub table_nips: Vec<(OpId, String, Nip)>,
}

/// Runs schema backtracing for a plan and a why-not NIP.
pub fn schema_backtrace(
    plan: &QueryPlan,
    db: &Database,
    why_not: &Nip,
) -> WhyNotResult<BacktraceResult> {
    let mut consistency = BTreeMap::new();
    let mut op_attribute_refs = BTreeMap::new();
    let mut table_nips = Vec::new();
    consistency.insert(plan.root.id, why_not.clone());
    walk(&plan.root, db, &mut consistency, &mut op_attribute_refs, &mut table_nips)?;
    Ok(BacktraceResult { consistency, op_attribute_refs, table_nips })
}

fn walk(
    node: &OpNode,
    db: &Database,
    consistency: &mut BTreeMap<OpId, Nip>,
    op_attribute_refs: &mut BTreeMap<OpId, Vec<AttrPath>>,
    table_nips: &mut Vec<(OpId, String, Nip)>,
) -> WhyNotResult<()> {
    let out_nip = consistency.get(&node.id).cloned().unwrap_or(Nip::Any);
    op_attribute_refs.insert(node.id, operator_attribute_refs(&node.op));
    if let Operator::TableAccess { table } = &node.op {
        table_nips.push((node.id, table.clone(), out_nip));
        return Ok(());
    }
    let child_nips = backward_nips(node, &out_nip, db)?;
    for (child, nip) in node.inputs.iter().zip(child_nips) {
        consistency.insert(child.id, nip);
        walk(child, db, consistency, op_attribute_refs, table_nips)?;
    }
    Ok(())
}

/// The attribute paths referenced by an operator's parameters.
pub fn operator_attribute_refs(op: &Operator) -> Vec<AttrPath> {
    match op {
        Operator::Selection { predicate } | Operator::Join { predicate, .. } => {
            predicate.referenced_attributes()
        }
        Operator::Projection { columns } => {
            columns.iter().flat_map(|c| c.expr.referenced_attributes()).collect()
        }
        Operator::Rename { pairs } => {
            pairs.iter().map(|p| AttrPath::single(p.from.clone())).collect()
        }
        Operator::TupleFlatten { source, .. } => vec![source.clone()],
        Operator::Flatten { attr, .. } => vec![AttrPath::single(attr.clone())],
        Operator::TupleNest { attrs, .. } | Operator::RelationNest { attrs, .. } => {
            attrs.iter().map(|a| AttrPath::single(a.clone())).collect()
        }
        Operator::NestAggregation { attr, field, .. } => {
            let mut refs = vec![AttrPath::single(attr.clone())];
            if let Some(field) = field {
                refs.push(AttrPath::new([attr.clone(), field.clone()]));
            }
            refs
        }
        Operator::GroupAggregation { group_by, aggs } => {
            let mut refs: Vec<AttrPath> =
                group_by.iter().map(|g| AttrPath::single(g.clone())).collect();
            refs.extend(aggs.iter().flat_map(|a| a.input.referenced_attributes()));
            refs
        }
        Operator::TableAccess { .. }
        | Operator::CrossProduct
        | Operator::Union
        | Operator::Difference
        | Operator::Dedup => Vec::new(),
    }
}

/// The constrained fields of a tuple NIP (empty for unconstrained NIPs).
fn constrained_fields(nip: &Nip) -> Vec<(Sym, Nip)> {
    match nip {
        Nip::Tuple(fields) => fields
            .iter()
            .filter(|(_, n)| !n.is_unconstrained())
            .map(|(name, n)| (*name, n.clone()))
            .collect(),
        _ => Vec::new(),
    }
}

/// Whether a leaf constraint requires the value to actually *contribute*
/// (exact non-null / non-zero values and lower bounds); only such constraints
/// are translated into non-null requirements on aggregation or computed-column
/// inputs.
fn requires_contribution(nip: &Nip) -> bool {
    match nip {
        Nip::Pred(NipCmp::Gt | NipCmp::Ge, _) => true,
        Nip::Pred(NipCmp::Ne, v) => v.is_null() || v.as_float() == Some(0.0),
        Nip::Value(v) => !v.is_null() && v.as_float() != Some(0.0),
        _ => false,
    }
}

/// A not-null leaf constraint.
fn not_null() -> Nip {
    Nip::Pred(NipCmp::Ne, Value::Null)
}

/// Constrains `nip` at `path`, leaving it unchanged when the path cannot be
/// resolved against `schema` (which can happen for pruned-but-unvalidatable
/// schema alternatives or computed columns).
fn constrain_or_keep(nip: Nip, path: &AttrPath, leaf: Nip, schema: &TupleType) -> Nip {
    match nip.constrain(path, leaf, schema) {
        Ok(updated) => updated,
        Err(_) => nip,
    }
}

/// Computes the NIPs of a node's inputs from the NIP of its output.
pub fn backward_nips(node: &OpNode, out_nip: &Nip, db: &Database) -> WhyNotResult<Vec<Nip>> {
    let child_schemas: Vec<TupleType> =
        node.inputs.iter().map(|c| output_type(c, db)).collect::<Result<_, _>>()?;
    let unconstrained = || child_schemas.iter().map(Nip::any_for_tuple_type).collect::<Vec<_>>();
    if out_nip.is_unconstrained() {
        return Ok(unconstrained());
    }
    let fields = constrained_fields(out_nip);

    let result: Vec<Nip> = match &node.op {
        Operator::TableAccess { .. } => Vec::new(),
        Operator::Selection { .. } | Operator::Dedup => vec![out_nip.clone()],
        Operator::Union => vec![out_nip.clone(), out_nip.clone()],
        Operator::Difference => vec![out_nip.clone(), Nip::any_for_tuple_type(&child_schemas[1])],
        Operator::Projection { columns } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                let Some(column) = columns.iter().find(|c| *name == c.name) else { continue };
                match &column.expr {
                    Expr::Attr(path) => {
                        nip = constrain_or_keep(nip.clone(), path, constraint.clone(), schema);
                    }
                    expr => {
                        if requires_contribution(constraint) {
                            for path in expr.referenced_attributes() {
                                nip = constrain_or_keep(nip.clone(), &path, not_null(), schema);
                            }
                        }
                    }
                }
            }
            vec![nip]
        }
        Operator::Rename { pairs } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                let source: Sym = pairs
                    .iter()
                    .find(|p| *name == p.to)
                    .map(|p| Sym::intern(&p.from))
                    .unwrap_or(*name);
                nip = constrain_or_keep(
                    nip.clone(),
                    &AttrPath::single(source),
                    constraint.clone(),
                    schema,
                );
            }
            vec![nip]
        }
        Operator::Join { .. } | Operator::CrossProduct => {
            let left_schema = &child_schemas[0];
            let right_schema = &child_schemas[1];
            let mut left = Nip::any_for_tuple_type(left_schema);
            let mut right = Nip::any_for_tuple_type(right_schema);
            for (name, constraint) in &fields {
                let path = AttrPath::single(*name);
                if left_schema.contains(name) {
                    left = constrain_or_keep(left.clone(), &path, constraint.clone(), left_schema);
                } else if right_schema.contains(name) {
                    right =
                        constrain_or_keep(right.clone(), &path, constraint.clone(), right_schema);
                }
            }
            // Transfer leaf constraints across equi-join conditions so that
            // e.g. `c_custkey = 61402` also constrains `o_custkey` on the
            // other side (needed to identify compatible data below the join).
            if let Operator::Join { predicate, .. } = &node.op {
                for (a, b) in equi_pairs(predicate) {
                    transfer_constraint(
                        &fields,
                        &a,
                        &b,
                        left_schema,
                        right_schema,
                        &mut left,
                        &mut right,
                    )?;
                    transfer_constraint(
                        &fields,
                        &b,
                        &a,
                        left_schema,
                        right_schema,
                        &mut left,
                        &mut right,
                    )?;
                }
            }
            vec![left, right]
        }
        Operator::TupleFlatten { source, alias } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                if alias.as_deref() == Some(name.as_str()) {
                    nip = constrain_or_keep(nip.clone(), source, constraint.clone(), schema);
                } else if schema.contains(*name) {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &AttrPath::single(*name),
                        constraint.clone(),
                        schema,
                    );
                } else if schema.resolve_path(&source.child(*name)).is_ok() {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &source.child(*name),
                        constraint.clone(),
                        schema,
                    );
                }
            }
            vec![nip]
        }
        Operator::Flatten { attr, alias, .. } => {
            let schema = &child_schemas[0];
            let element_type = match schema.attribute(attr) {
                Some(NestedType::Relation(t)) => t.clone(),
                _ => TupleType::empty(),
            };
            let mut nip = Nip::any_for_tuple_type(schema);
            let mut element_constraints: Vec<(Sym, Nip)> = Vec::new();
            for (name, constraint) in &fields {
                if alias.as_deref() == Some(name.as_str()) {
                    // The whole element is constrained.
                    nip = nip.with_field(attr.clone(), Nip::bag_containing(constraint.clone()));
                } else if schema.contains(*name) {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &AttrPath::single(*name),
                        constraint.clone(),
                        schema,
                    );
                } else if element_type.contains(*name) {
                    element_constraints.push((*name, constraint.clone()));
                }
            }
            if !element_constraints.is_empty() {
                let mut element = Nip::any_for_tuple_type(&element_type);
                for (name, constraint) in element_constraints {
                    element = element.with_field(name, constraint);
                }
                nip = nip.with_field(attr.clone(), Nip::bag_containing(element));
            }
            vec![nip]
        }
        Operator::TupleNest { attrs, into } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                if *name == into.as_str() {
                    for (inner_name, inner) in constrained_fields(constraint) {
                        if attrs.iter().any(|a| inner_name == a.as_str()) {
                            nip = nip.constrain(
                                &AttrPath::single(inner_name),
                                inner.clone(),
                                schema,
                            )?;
                        }
                    }
                } else if schema.contains(*name) {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &AttrPath::single(*name),
                        constraint.clone(),
                        schema,
                    );
                }
            }
            vec![nip]
        }
        Operator::RelationNest { attrs, into } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                if *name == into.as_str() {
                    // "The nested collection must contain at least one element
                    // matching e" ⇒ at least one input tuple of the group must
                    // match e on the nested attributes.
                    if let Nip::Bag(entries) = constraint {
                        if let Some(entry) = entries.iter().find(|e| !matches!(e, Nip::Star)) {
                            for (inner_name, inner) in constrained_fields(entry) {
                                if attrs.iter().any(|a| inner_name == a.as_str()) {
                                    nip = nip.constrain(
                                        &AttrPath::single(inner_name),
                                        inner.clone(),
                                        schema,
                                    )?;
                                }
                            }
                        }
                    }
                } else if schema.contains(*name) {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &AttrPath::single(*name),
                        constraint.clone(),
                        schema,
                    );
                }
            }
            vec![nip]
        }
        Operator::NestAggregation { attr, field, output, .. } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                if *name == output.as_str() {
                    if requires_contribution(constraint) {
                        let element = match field {
                            Some(f) => Nip::Tuple(vec![(Sym::intern(f), not_null())]),
                            None => Nip::Any,
                        };
                        nip = nip.with_field(attr.clone(), Nip::bag_containing(element));
                    }
                } else if schema.contains(*name) {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &AttrPath::single(*name),
                        constraint.clone(),
                        schema,
                    );
                }
            }
            vec![nip]
        }
        Operator::GroupAggregation { aggs, .. } => {
            let schema = &child_schemas[0];
            let mut nip = Nip::any_for_tuple_type(schema);
            for (name, constraint) in &fields {
                if let Some(agg) = aggs.iter().find(|a| *name == a.output) {
                    if requires_contribution(constraint) {
                        for path in agg.input.referenced_attributes() {
                            nip = constrain_or_keep(nip.clone(), &path, not_null(), schema);
                        }
                    }
                } else if schema.contains(*name) {
                    nip = constrain_or_keep(
                        nip.clone(),
                        &AttrPath::single(*name),
                        constraint.clone(),
                        schema,
                    );
                }
            }
            vec![nip]
        }
    };
    Ok(result)
}

/// Equality pairs `(a, b)` of attribute references in a conjunctive predicate.
fn equi_pairs(predicate: &Expr) -> Vec<(AttrPath, AttrPath)> {
    let mut pairs = Vec::new();
    collect_equi_pairs(predicate, &mut pairs);
    pairs
}

fn collect_equi_pairs(predicate: &Expr, pairs: &mut Vec<(AttrPath, AttrPath)>) {
    match predicate {
        Expr::And(a, b) => {
            collect_equi_pairs(a, pairs);
            collect_equi_pairs(b, pairs);
        }
        Expr::Cmp(a, nrab_algebra::CmpOp::Eq, b) => {
            if let (Expr::Attr(pa), Expr::Attr(pb)) = (a.as_ref(), b.as_ref()) {
                pairs.push((pa.clone(), pb.clone()));
            }
        }
        _ => {}
    }
}

/// If the output constrains attribute `from` with a leaf constraint, also
/// constrain attribute `to` (on whichever join side declares it).
#[allow(clippy::too_many_arguments)]
fn transfer_constraint(
    fields: &[(Sym, Nip)],
    from: &AttrPath,
    to: &AttrPath,
    left_schema: &TupleType,
    right_schema: &TupleType,
    left: &mut Nip,
    right: &mut Nip,
) -> WhyNotResult<()> {
    let Some(from_leaf) = from.leaf() else { return Ok(()) };
    let Some((_, constraint)) = fields.iter().find(|(name, _)| *name == from_leaf) else {
        return Ok(());
    };
    if !matches!(constraint, Nip::Value(_) | Nip::Pred(..)) {
        return Ok(());
    }
    if left_schema.resolve_path(to).is_ok() {
        *left = constrain_or_keep(left.clone(), to, constraint.clone(), left_schema);
    } else if right_schema.resolve_path(to).is_ok() {
        *right = constrain_or_keep(right.clone(), to, constraint.clone(), right_schema);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_data::{Bag, Value};
    use nrab_algebra::expr::CmpOp;
    use nrab_algebra::{AggFunc, AggSpec, JoinKind, PlanBuilder};

    fn person_db() -> Database {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person = TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address.clone())),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_relation("person", person, Bag::new());
        db
    }

    fn running_example() -> QueryPlan {
        PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .project_attrs(&["name", "city"])
            .relation_nest(vec!["name"], "nList")
            .build()
            .unwrap()
    }

    fn why_not_ny() -> Nip {
        Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))])
    }

    #[test]
    fn running_example_backtrace_reproduces_example_11() {
        let db = person_db();
        let plan = running_example();
        let result = schema_backtrace(&plan, &db, &why_not_ny()).unwrap();

        // Root (op 4) keeps the why-not NIP.
        assert_eq!(result.consistency[&4], why_not_ny());
        // Below the nesting (ops 3, 2, 1): city = NY, name unconstrained.
        for op in [3u32, 2, 1] {
            let nip = &result.consistency[&op];
            assert!(nip.to_string().contains("city: \"NY\""), "op {op}: {nip}");
        }
        // Table access (op 0): the pushed-down NIP of Example 11, with the
        // city constraint nested inside address2.
        let (op, table, nip) = &result.table_nips[0];
        assert_eq!(*op, 0);
        assert_eq!(table, "person");
        let rendered = nip.to_string();
        assert!(rendered.contains("address2"), "{rendered}");
        assert!(rendered.contains("NY"), "{rendered}");
        // It matches Sue's tuple but not Peter's (Figure 4's consistent flags).
        let addr = |city: &str, year: i64| {
            Value::tuple([("city", Value::str(city)), ("year", Value::int(year))])
        };
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
            ("address2", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
        ]);
        let peter = Value::tuple([
            ("name", Value::str("Peter")),
            ("address1", Value::bag([addr("NY", 2010), addr("LA", 2019), addr("LV", 2017)])),
            ("address2", Value::bag([addr("LA", 2010), addr("SF", 2018)])),
        ]);
        assert!(nip.matches(&sue));
        assert!(!nip.matches(&peter));
    }

    #[test]
    fn attribute_refs_are_collected_per_operator() {
        let db = person_db();
        let plan = running_example();
        let result = schema_backtrace(&plan, &db, &why_not_ny()).unwrap();
        assert_eq!(result.op_attribute_refs[&1], vec![AttrPath::single("address2")]);
        assert_eq!(result.op_attribute_refs[&2], vec![AttrPath::single("year")]);
        assert!(result.op_attribute_refs[&0].is_empty());
    }

    #[test]
    fn join_backtrace_transfers_equi_constraints() {
        let mut db = Database::new();
        let customer =
            TupleType::new([("c_custkey", NestedType::int()), ("c_name", NestedType::str())])
                .unwrap();
        let orders =
            TupleType::new([("o_custkey", NestedType::int()), ("o_total", NestedType::float())])
                .unwrap();
        db.add_relation("customer", customer, Bag::new());
        db.add_relation("orders", orders, Bag::new());
        let plan = PlanBuilder::table("customer")
            .join(
                PlanBuilder::table("orders"),
                JoinKind::Inner,
                Expr::cmp(Expr::attr("c_custkey"), CmpOp::Eq, Expr::attr("o_custkey")),
            )
            .build()
            .unwrap();
        let why_not = Nip::tuple([("c_custkey", Nip::val(Value::int(42))), ("o_total", Nip::Any)]);
        let result = schema_backtrace(&plan, &db, &why_not).unwrap();
        let customer_nip = &result.table_nips.iter().find(|(_, t, _)| t == "customer").unwrap().2;
        let orders_nip = &result.table_nips.iter().find(|(_, t, _)| t == "orders").unwrap().2;
        assert!(customer_nip.to_string().contains("42"), "{customer_nip}");
        assert!(orders_nip.to_string().contains("42"), "{orders_nip}");
    }

    #[test]
    fn aggregation_backtrace_requires_contributing_inputs() {
        let mut db = Database::new();
        let lineitem = TupleType::new([
            ("l_orderkey", NestedType::int()),
            ("l_extendedprice", NestedType::float()),
        ])
        .unwrap();
        db.add_relation("lineitem", lineitem, Bag::new());
        let plan = PlanBuilder::table("lineitem")
            .group_aggregate(
                vec!["l_orderkey"],
                vec![AggSpec::new(AggFunc::Sum, Expr::attr("l_extendedprice"), "revenue")],
            )
            .build()
            .unwrap();
        let why_not = Nip::tuple([
            ("l_orderkey", Nip::val(Value::int(7))),
            ("revenue", Nip::pred(NipCmp::Gt, 0i64)),
        ]);
        let result = schema_backtrace(&plan, &db, &why_not).unwrap();
        let table_nip = &result.table_nips[0].2;
        // The group key is pushed down, and the aggregated attribute must be non-null.
        assert!(table_nip.matches(&Value::tuple([
            ("l_orderkey", Value::int(7)),
            ("l_extendedprice", Value::float(10.0)),
        ])));
        assert!(!table_nip.matches(&Value::tuple([
            ("l_orderkey", Value::int(7)),
            ("l_extendedprice", Value::Null),
        ])));
        assert!(!table_nip.matches(&Value::tuple([
            ("l_orderkey", Value::int(8)),
            ("l_extendedprice", Value::float(10.0)),
        ])));
    }

    #[test]
    fn unconstrained_why_not_yields_unconstrained_inputs() {
        let db = person_db();
        let plan = running_example();
        let result = schema_backtrace(&plan, &db, &Nip::Any).unwrap();
        assert!(result.table_nips[0].2.is_unconstrained());
    }
}
