//! Exact explanations for small inputs (Section 4, Theorem 1's PTIME case).
//!
//! The exact algorithm enumerates reparameterizations over the restricted
//! space the paper's PTIME argument uses — attribute swaps, constant changes
//! drawn from the active domain, comparison-operator changes, and join/flatten
//! type changes — evaluates each candidate query, and keeps the successful
//! ones. Minimal successful reparameterizations (Definition 9) are selected
//! using the tree-edit-distance side-effect metric, and their operator sets
//! are the exact explanations (Definition 10).
//!
//! The search is exponential in the number of simultaneously changed operators
//! and is therefore only intended for small instances (the running example,
//! the crime scenarios, unit tests); the heuristic engine of
//! [`crate::explain`] is the scalable path.

use std::collections::BTreeSet;

use nested_data::TupleType;
use nested_data::{tree_distance, Bag, Value};
use nrab_algebra::params::{admissible_changes, ParamChange, Reparameterization};
use nrab_algebra::schema::output_type;
use nrab_algebra::{evaluate, OpId, Operator};

use crate::error::WhyNotResult;
use crate::question::WhyNotQuestion;

/// Configuration of the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactConfig {
    /// Maximum number of operators changed simultaneously.
    pub max_changed_operators: usize,
    /// Maximum number of candidate reparameterizations evaluated (safety cap).
    pub max_candidates: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig { max_changed_operators: 2, max_candidates: 200_000 }
    }
}

/// A successful reparameterization found by the exact search.
#[derive(Debug, Clone)]
pub struct ExactSr {
    /// The reparameterization itself.
    pub reparameterization: Reparameterization,
    /// The operators it changes (`Δ(Q, Q')`).
    pub operators: BTreeSet<OpId>,
    /// Tree edit distance between the original and the reparameterized result.
    pub side_effect_distance: u64,
}

/// The result of the exact search.
#[derive(Debug, Clone, Default)]
pub struct ExactAnswer {
    /// All successful reparameterizations found.
    pub successful: Vec<ExactSr>,
    /// The minimal ones according to Definition 9.
    pub minimal: Vec<ExactSr>,
}

impl ExactAnswer {
    /// The distinct operator sets of the minimal successful
    /// reparameterizations — the exact explanations `E(Φ)`.
    pub fn explanations(&self) -> Vec<BTreeSet<OpId>> {
        let mut sets: Vec<BTreeSet<OpId>> = Vec::new();
        for sr in &self.minimal {
            if !sets.contains(&sr.operators) {
                sets.push(sr.operators.clone());
            }
        }
        sets
    }
}

/// Runs the exact search for a why-not question.
pub fn exact_explanations(
    question: &WhyNotQuestion,
    config: ExactConfig,
) -> WhyNotResult<ExactAnswer> {
    let original_result = question.validate()?;
    let plan = &question.plan;
    let db = &question.db;

    // Candidate constants: the active domain of every accessed relation plus
    // the constants already appearing in the query.
    let mut candidates: Vec<Value> = Vec::new();
    for table in plan.accessed_tables() {
        if let Ok(schema) = db.schema(&table) {
            for (attr, _) in schema.fields() {
                if let Ok(mut adom) = db.active_domain(&table, attr) {
                    candidates.append(&mut adom);
                }
            }
        }
    }
    candidates.sort();
    candidates.dedup();

    // Per-operator admissible changes.
    let mut per_op: Vec<(OpId, Vec<ParamChange>)> = Vec::new();
    for node in plan.nodes_top_down() {
        if matches!(node.op, Operator::TableAccess { .. }) {
            continue;
        }
        let input_schema: TupleType = match node.inputs.len() {
            0 => TupleType::empty(),
            1 => output_type(&node.inputs[0], db)?,
            _ => {
                let left = output_type(&node.inputs[0], db)?;
                let right = output_type(&node.inputs[1], db)?;
                left.concat(&right).unwrap_or(left)
            }
        };
        let changes = admissible_changes(node.id, &node.op, &input_schema, &candidates);
        if !changes.is_empty() {
            per_op.push((node.id, changes));
        }
    }

    let mut evaluated = 0usize;
    let mut successful: Vec<ExactSr> = Vec::new();

    // Enumerate combinations of at most `max_changed_operators` operators,
    // one admissible change per chosen operator.
    let op_indices: Vec<usize> = (0..per_op.len()).collect();
    for subset in subsets_up_to(&op_indices, config.max_changed_operators) {
        if subset.is_empty() {
            continue;
        }
        let mut change_indices = vec![0usize; subset.len()];
        loop {
            if evaluated >= config.max_candidates {
                break;
            }
            let mut rp = Reparameterization::empty();
            for (slot, &op_idx) in subset.iter().enumerate() {
                rp.push(per_op[op_idx].1[change_indices[slot]].clone());
            }
            evaluated += 1;
            if let Ok(candidate_plan) = rp.apply(plan) {
                if let Ok(result) = evaluate(&candidate_plan, db) {
                    if result.iter().any(|(v, _)| question.why_not.matches(v)) {
                        let distance = result_distance(&original_result, &result);
                        successful.push(ExactSr {
                            operators: rp.changed_ops(),
                            reparameterization: rp,
                            side_effect_distance: distance,
                        });
                    }
                }
            }
            // Advance the per-slot change indices (mixed-radix counter).
            let mut carry = true;
            for (slot, index) in change_indices.iter_mut().enumerate() {
                if !carry {
                    break;
                }
                *index += 1;
                if *index < per_op[subset[slot]].1.len() {
                    carry = false;
                } else {
                    *index = 0;
                }
            }
            if carry {
                break;
            }
        }
        if evaluated >= config.max_candidates {
            break;
        }
    }

    let minimal = minimal_srs(&successful);
    Ok(ExactAnswer { successful, minimal })
}

/// Distance between two query results (bags of nested tuples), using the
/// unordered tree edit distance over their tree views (Definition 9's `d`).
fn result_distance(a: &Bag, b: &Bag) -> u64 {
    tree_distance(&Value::from_bag(a.clone()), &Value::from_bag(b.clone()))
}

/// Selects the minimal successful reparameterizations under Definition 9.
fn minimal_srs(successful: &[ExactSr]) -> Vec<ExactSr> {
    successful
        .iter()
        .filter(|sr| {
            !successful.iter().any(|other| {
                (other.operators.is_subset(&sr.operators)
                    && other.side_effect_distance <= sr.side_effect_distance)
                    && (other.operators.len() < sr.operators.len()
                        || other.side_effect_distance < sr.side_effect_distance)
            })
        })
        .cloned()
        .collect()
}

/// All subsets of `items` with at most `k` elements (including the empty set).
fn subsets_up_to(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for &item in items {
        let mut extended = Vec::new();
        for subset in &out {
            if subset.len() < k {
                let mut next = subset.clone();
                next.push(item);
                extended.push(next);
            }
        }
        out.extend(extended);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumeration() {
        let subsets = subsets_up_to(&[0, 1, 2], 2);
        assert!(subsets.contains(&vec![]));
        assert!(subsets.contains(&vec![0, 2]));
        assert!(!subsets.iter().any(|s| s.len() > 2));
        assert_eq!(subsets.len(), 1 + 3 + 3);
    }
}
