//! Loose side-effect bounds (Section 5.4).
//!
//! The exact number of side effects of an explanation would require comparing
//! the original query result against the result of every concrete
//! reparameterization; instead, the paper (and this module) computes loose
//! lower and upper bounds `LB = LB(Δ⁺) + LB(Δ⁻)` and `UB = UB(Δ⁺) + UB(Δ⁻)`
//! from the counting information already present in the trace:
//!
//! * `UB(Δ⁺)` — valid result tuples that an explanation's reparameterizations
//!   could *add*: tuples whose lineage passes through a non-retained tuple at
//!   one of the explanation's operators (original alternative), or tuples that
//!   do not coincide with a fully-retained original tuple (other
//!   alternatives).
//! * `UB(Δ⁻)` — original result tuples that could disappear.
//! * `LB` — zero whenever the explanation touches a selection or join (a
//!   careful reparameterization might avoid all side effects); otherwise the
//!   difference between the retained tuple count and the original result size.

use std::collections::BTreeSet;
use std::fmt;

use nrab_algebra::{OpId, Operator, QueryPlan};
use nrab_provenance::TraceResult;

/// Lower and upper bounds on the number of side effects of an explanation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SideEffectBounds {
    /// Lower bound `LB(Δ⁺) + LB(Δ⁻)`.
    pub lower: u64,
    /// Upper bound `UB(Δ⁺) + UB(Δ⁻)`.
    pub upper: u64,
}

impl fmt::Display for SideEffectBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lower, self.upper)
    }
}

/// Root-trace tuple ids whose lineage (under `sa`) contains a valid,
/// non-retained tuple at one of `ops` (all operators when `ops` is `None`).
fn tainted_root_ids(
    plan: &QueryPlan,
    trace: &TraceResult,
    sa: usize,
    ops: Option<&BTreeSet<OpId>>,
) -> BTreeSet<u64> {
    // Process operators bottom-up (reverse pre-order) and propagate a
    // "tainted" marker along the lineage edges.
    let mut tainted: BTreeSet<u64> = BTreeSet::new();
    for op_id in plan.op_ids_top_down().into_iter().rev() {
        let Some(op_trace) = trace.trace(op_id) else { continue };
        let op_counts = ops.map(|set| set.contains(&op_id)).unwrap_or(true);
        for tuple in &op_trace.tuples {
            let flags = tuple.flags(sa);
            let own_taint = op_counts && flags.valid && !flags.retained;
            let inherited = tuple.input_ids(sa).iter().any(|id| tainted.contains(id));
            if own_taint || inherited {
                tainted.insert(tuple.id);
            }
        }
    }
    let root = trace.root_trace();
    root.tuples
        .iter()
        .filter(|t| t.flags(sa).valid && tainted.contains(&t.id))
        .map(|t| t.id)
        .collect()
}

/// Computes the side-effect bounds of one candidate explanation.
pub fn side_effect_bounds(
    plan: &QueryPlan,
    trace: &TraceResult,
    sa: usize,
    ops: &BTreeSet<OpId>,
    original_result_size: u64,
) -> SideEffectBounds {
    let root = trace.root_trace();
    // Root tuples of the original alternative whose whole lineage is retained:
    // these reproduce the original query result.
    let fully_retained_original: BTreeSet<u64> = {
        let tainted_any = tainted_root_ids(plan, trace, 0, None);
        root.tuples
            .iter()
            .filter(|t| t.flags(0).valid && !tainted_any.contains(&t.id))
            .map(|t| t.id)
            .collect()
    };

    // UB(Δ⁺)
    let ub_plus = if sa == 0 {
        tainted_root_ids(plan, trace, sa, Some(ops)).len() as u64
    } else {
        root.tuples
            .iter()
            .filter(|t| t.flags(sa).valid)
            .filter(|t| {
                let unchanged_original =
                    fully_retained_original.contains(&t.id) && t.variant(sa) == t.variant(0);
                !unchanged_original
            })
            .count() as u64
    };

    // UB(Δ⁻): original tuples that are not guaranteed to survive.
    let surviving = root
        .tuples
        .iter()
        .filter(|t| {
            t.flags(sa).valid
                && fully_retained_original.contains(&t.id)
                && t.variant(sa) == t.variant(0)
        })
        .count() as u64;
    let ub_minus = original_result_size.saturating_sub(surviving);

    // LB: zero when a selection or join is part of the explanation.
    let touches_selective_op = ops.iter().any(|op| {
        plan.node(*op)
            .map(|n| matches!(n.op, Operator::Selection { .. } | Operator::Join { .. }))
            .unwrap_or(false)
    });
    let (lb_plus, lb_minus) = if touches_selective_op {
        (0, 0)
    } else {
        let tainted_any = tainted_root_ids(plan, trace, sa, None);
        let valid_retained = root
            .tuples
            .iter()
            .filter(|t| t.flags(sa).valid && !tainted_any.contains(&t.id))
            .count() as u64;
        (
            valid_retained.saturating_sub(original_result_size),
            original_result_size.saturating_sub(valid_retained),
        )
    };

    SideEffectBounds { lower: lb_plus + lb_minus, upper: ub_plus + ub_minus }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternatives::{enumerate_schema_alternatives, AttributeAlternative};
    use crate::backtrace::schema_backtrace;
    use nested_data::{Bag, NestedType, Nip, TupleType, Value};
    use nrab_algebra::expr::{CmpOp, Expr};
    use nrab_algebra::{evaluate, Database, PlanBuilder};
    use nrab_provenance::trace_plan;

    fn person_db() -> Database {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person_ty = TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address.clone())),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let addr = |city: &str, year: i64| {
            Value::tuple([("city", Value::str(city)), ("year", Value::int(year))])
        };
        let peter = Value::tuple([
            ("name", Value::str("Peter")),
            ("address1", Value::bag([addr("NY", 2010), addr("LA", 2019), addr("LV", 2017)])),
            ("address2", Value::bag([addr("LA", 2010), addr("SF", 2018)])),
        ]);
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
            ("address2", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
        ]);
        let mut db = Database::new();
        db.add_relation("person", person_ty, Bag::from_values([peter, sue]));
        db
    }

    fn setup() -> (
        nrab_algebra::QueryPlan,
        Database,
        Vec<nrab_provenance::SchemaAlternative>,
        TraceResult,
        u64,
    ) {
        let db = person_db();
        let plan = PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .project_attrs(&["name", "city"])
            .relation_nest(vec!["name"], "nList")
            .build()
            .unwrap();
        let why_not =
            Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))]);
        let bt = schema_backtrace(&plan, &db, &why_not).unwrap();
        let sas = enumerate_schema_alternatives(
            &plan,
            &db,
            &why_not,
            &bt,
            &[AttributeAlternative::new("person", "address2", "address1")],
            16,
        )
        .unwrap();
        let trace = trace_plan(&plan, &db, &sas).unwrap();
        let size = evaluate(&plan, &db).unwrap().total();
        (plan, db, sas, trace, size)
    }

    #[test]
    fn selection_explanation_has_zero_lower_bound() {
        let (plan, _db, _sas, trace, size) = setup();
        let bounds = side_effect_bounds(&plan, &trace, 0, &BTreeSet::from([2]), size);
        assert_eq!(bounds.lower, 0);
        assert!(bounds.upper >= 1, "relaxing the selection adds at least the NY tuple");
    }

    #[test]
    fn example_10_ordering_of_side_effects() {
        // SRσ (selection only, original SA) has *more* potential side effects
        // than SR_Fσ (flatten + selection, SA 2): T2 adds a whole SF tuple
        // while T3 only modifies nested content (Figure 2).
        let (plan, _db, _sas, trace, size) = setup();
        let sigma = side_effect_bounds(&plan, &trace, 0, &BTreeSet::from([2]), size);
        let f_sigma = side_effect_bounds(&plan, &trace, 1, &BTreeSet::from([1, 2]), size);
        assert!(
            sigma.upper >= f_sigma.upper,
            "σ-only repair should not have a smaller upper bound: {sigma} vs {f_sigma}"
        );
    }

    #[test]
    fn bounds_are_monotone_in_the_operator_set() {
        let (plan, _db, _sas, trace, size) = setup();
        let small = side_effect_bounds(&plan, &trace, 0, &BTreeSet::from([2]), size);
        let large = side_effect_bounds(&plan, &trace, 0, &BTreeSet::from([1, 2]), size);
        assert!(large.upper >= small.upper);
    }

    #[test]
    fn display_format() {
        let bounds = SideEffectBounds { lower: 0, upper: 3 };
        assert_eq!(bounds.to_string(), "[0, 3]");
    }
}
