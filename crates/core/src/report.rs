//! Human-readable reports of why-not answers.

use nrab_algebra::QueryPlan;

use crate::explain::WhyNotAnswer;

/// Renders a why-not answer as a numbered, human-readable report.
pub fn render_answer(answer: &WhyNotAnswer, plan: &QueryPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "query with {} operators, original result size {}\n",
        plan.operator_count(),
        answer.original_result_size
    ));
    out.push_str(&format!(
        "{} schema alternative(s) considered, {} explanation(s) found\n",
        answer.schema_alternatives.len(),
        answer.explanations.len()
    ));
    if answer.explanations.is_empty() {
        out.push_str("no explanation found: the missing answer cannot be produced by the\n");
        out.push_str("reparameterizations captured by the heuristic tracing\n");
        return out;
    }
    for (i, explanation) in answer.explanations.iter().enumerate() {
        out.push_str(&format!(
            "#{rank}: change {count} operator(s) {ops:?}  (schema alternative S{sa}, side effects {se})\n",
            rank = i + 1,
            count = explanation.operators.len(),
            ops = explanation.operators.iter().collect::<Vec<_>>(),
            sa = explanation.schema_alternative + 1,
            se = explanation.side_effects,
        ));
        for label in &explanation.operator_labels {
            out.push_str(&format!("    {label}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternatives::AttributeAlternative;
    use crate::explain::WhyNotEngine;
    use crate::question::WhyNotQuestion;
    use nested_data::{Bag, NestedType, Nip, TupleType, Value};
    use nrab_algebra::expr::{CmpOp, Expr};
    use nrab_algebra::{Database, PlanBuilder};

    #[test]
    fn report_lists_ranked_explanations() {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person_ty = TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address.clone())),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let addr = |city: &str, year: i64| {
            Value::tuple([("city", Value::str(city)), ("year", Value::int(year))])
        };
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
            ("address2", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
        ]);
        let mut db = Database::new();
        db.add_relation("person", person_ty, Bag::from_values([sue]));
        let plan = PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .project_attrs(&["name", "city"])
            .relation_nest(vec!["name"], "nList")
            .build()
            .unwrap();
        let why_not =
            Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))]);
        let question = WhyNotQuestion::new(plan.clone(), db, why_not);
        let answer = WhyNotEngine::rp()
            .explain(&question, &[AttributeAlternative::new("person", "address2", "address1")])
            .unwrap();
        let report = render_answer(&answer, &plan);
        assert!(report.contains("#1"));
        assert!(report.contains("σ"));
        assert!(report.contains("schema alternative"));
    }

    #[test]
    fn report_handles_empty_answers() {
        let answer = WhyNotAnswer {
            explanations: vec![],
            schema_alternatives: vec![],
            original_result_size: 0,
        };
        let plan = PlanBuilder::table("t").build().unwrap();
        let report = render_answer(&answer, &plan);
        assert!(report.contains("no explanation"));
    }
}
