//! Why-not questions (Definition 5).

use std::sync::Arc;

use nested_data::Nip;
use nrab_algebra::{evaluate, Database, QueryPlan};

use crate::error::{WhyNotError, WhyNotResult};

/// A why-not question `Φ = ⟨Q, D, t⟩`: a query, a database, and a why-not
/// tuple `t` given as a NIP over the query's output schema.
///
/// Plan and database are held behind [`Arc`] so that serving layers can pose
/// many questions against one registered database without deep-copying it;
/// `WhyNotQuestion::new` still accepts owned values.
#[derive(Debug, Clone)]
pub struct WhyNotQuestion {
    /// The (possibly erroneous) query.
    pub plan: Arc<QueryPlan>,
    /// The input database.
    pub db: Arc<Database>,
    /// The missing answer of interest.
    pub why_not: Nip,
}

impl WhyNotQuestion {
    /// Creates a why-not question without validating it.
    pub fn new(
        plan: impl Into<Arc<QueryPlan>>,
        db: impl Into<Arc<Database>>,
        why_not: Nip,
    ) -> Self {
        WhyNotQuestion { plan: plan.into(), db: db.into(), why_not }
    }

    /// Validates the question:
    ///
    /// * the NIP is structurally valid (Definition 3),
    /// * the NIP conforms to the query's output schema,
    /// * no tuple of `⟦Q⟧_D` matches the NIP (otherwise the "missing" answer
    ///   is not actually missing — Definition 5 requires this).
    ///
    /// Returns the original query result so callers can reuse it.
    pub fn validate(&self) -> WhyNotResult<std::sync::Arc<nested_data::Bag>> {
        self.why_not.validate()?;
        let output_schema = nrab_algebra::schema::plan_output_type(&self.plan, &self.db)?;
        if !self.why_not.conforms_to(&nested_data::NestedType::Tuple(output_schema.clone()))
            && !matches!(self.why_not, Nip::Any)
        {
            return Err(WhyNotError::InvalidQuestion(format!(
                "the why-not tuple {} does not conform to the output schema {}",
                self.why_not, output_schema
            )));
        }
        let result = evaluate(&self.plan, &self.db)?;
        if let Some((matching, _)) = result.iter().find(|(v, _)| self.why_not.matches(v)) {
            return Err(WhyNotError::InvalidQuestion(format!(
                "the query result already contains a matching tuple: {matching}"
            )));
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_data::{Bag, NestedType, TupleType, Value};
    use nrab_algebra::expr::{CmpOp, Expr};
    use nrab_algebra::PlanBuilder;

    fn db() -> Database {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person = TupleType::new([
            ("name", NestedType::str()),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            (
                "address2",
                Value::bag([
                    Value::tuple([("city", Value::str("LA")), ("year", Value::int(2019))]),
                    Value::tuple([("city", Value::str("NY")), ("year", Value::int(2018))]),
                ]),
            ),
        ]);
        let mut db = Database::new();
        db.add_relation("person", person, Bag::from_values([sue]));
        db
    }

    fn plan() -> QueryPlan {
        PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .project_attrs(&["name", "city"])
            .build()
            .unwrap()
    }

    #[test]
    fn valid_question_for_missing_city() {
        let q = WhyNotQuestion::new(
            plan(),
            db(),
            Nip::tuple([("name", Nip::Any), ("city", Nip::val("NY"))]),
        );
        let result = q.validate().unwrap();
        assert_eq!(result.total(), 1);
    }

    #[test]
    fn question_matching_an_existing_tuple_is_rejected() {
        let q = WhyNotQuestion::new(
            plan(),
            db(),
            Nip::tuple([("name", Nip::Any), ("city", Nip::val("LA"))]),
        );
        let err = q.validate().unwrap_err();
        assert!(matches!(err, WhyNotError::InvalidQuestion(_)));
    }

    #[test]
    fn question_with_wrong_schema_is_rejected() {
        let q = WhyNotQuestion::new(plan(), db(), Nip::tuple([("nonexistent", Nip::val(1i64))]));
        assert!(q.validate().is_err());
    }

    #[test]
    fn structurally_invalid_nip_is_rejected() {
        let q = WhyNotQuestion::new(plan(), db(), Nip::tuple([("city", Nip::Star)]));
        assert!(q.validate().is_err());
    }
}
