//! The why-not explanation engine (Algorithm 1).

use std::collections::BTreeSet;
use std::sync::Arc;

use nested_data::Nip;
use nrab_algebra::{evaluate, AlgebraResult, Database, OpId, QueryPlan};
use nrab_provenance::{
    annotate_consistency, trace_plan_generalized, GeneralizedTrace, SchemaAlternative,
};

use crate::alternatives::{
    enumerate_schema_alternatives, AttributeAlternative, DEFAULT_MAX_ALTERNATIVES,
};
use crate::backtrace::schema_backtrace;
use crate::error::WhyNotResult;
use crate::msr::approximate_msrs;
use crate::question::WhyNotQuestion;
use crate::rank::{order_and_prune, RankedCandidate};
use crate::side_effects::{side_effect_bounds, SideEffectBounds};

/// Configuration of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Whether to reason about schema alternatives (`RP`) or only about the
    /// original attribute references (`RPnoSA`).
    pub use_schema_alternatives: bool,
    /// Cap on the number of enumerated schema alternatives.
    pub max_schema_alternatives: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            use_schema_alternatives: true,
            max_schema_alternatives: DEFAULT_MAX_ALTERNATIVES,
        }
    }
}

/// One query-based explanation: a set of operators that, reparameterized
/// together, can produce the missing answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The operators to change.
    pub operators: BTreeSet<OpId>,
    /// Human-readable labels (`kind` + parameters) of those operators, in
    /// ascending operator-id order.
    pub operator_labels: Vec<String>,
    /// The operator kind symbols (σ, π, ⋈, Fᴵ, ...), ascending by operator id.
    pub operator_kinds: Vec<String>,
    /// The schema alternative under which the explanation was found
    /// (0 = original attribute references).
    pub schema_alternative: usize,
    /// Loose bounds on the explanation's side effects (Section 5.4).
    pub side_effects: SideEffectBounds,
}

impl Explanation {
    /// Whether the explanation blames exactly the given operators.
    pub fn is_exactly(&self, ops: &[OpId]) -> bool {
        self.operators == ops.iter().copied().collect()
    }
}

/// The result of answering a why-not question.
#[derive(Debug, Clone)]
pub struct WhyNotAnswer {
    /// Explanations, ordered by the partial order of Definition 9 (fewer
    /// operators first, then fewer side effects).
    pub explanations: Vec<Explanation>,
    /// The schema alternatives considered (index 0 = original query).
    pub schema_alternatives: Vec<SchemaAlternative>,
    /// Number of top-level tuples of the original query result.
    pub original_result_size: u64,
}

impl WhyNotAnswer {
    /// The position (1-based) of the explanation blaming exactly `ops`,
    /// if present. Used to report gold-standard positions (Table 7).
    pub fn position_of(&self, ops: &[OpId]) -> Option<usize> {
        self.explanations.iter().position(|e| e.is_exactly(ops)).map(|p| p + 1)
    }

    /// All explanations as plain operator-id sets.
    pub fn operator_sets(&self) -> Vec<BTreeSet<OpId>> {
        self.explanations.iter().map(|e| e.operators.clone()).collect()
    }
}

/// Source of generalized (question-independent) traces — the seam where
/// callers plug in trace reuse.
///
/// The engine asks its provider for the generalized trace of `(plan, db,
/// sas)` and then specializes it to the question at hand with the cheap
/// consistency annotation. The default provider ([`DirectTracer`]) recomputes
/// the trace every time; `whynot-service` installs a cache keyed by plan,
/// database, and the substitution signature of the alternatives, so batched
/// and repeated questions skip the expensive generalized evaluation.
pub trait TraceProvider {
    /// Returns the generalized trace of `plan` over `db` under the
    /// substitutions of `sas`.
    fn generalized_trace(
        &mut self,
        plan: &QueryPlan,
        db: &Database,
        sas: &[SchemaAlternative],
    ) -> AlgebraResult<Arc<GeneralizedTrace>>;
}

/// The default trace provider: always recomputes.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectTracer;

impl TraceProvider for DirectTracer {
    fn generalized_trace(
        &mut self,
        plan: &QueryPlan,
        db: &Database,
        sas: &[SchemaAlternative],
    ) -> AlgebraResult<Arc<GeneralizedTrace>> {
        trace_plan_generalized(plan, db, sas).map(Arc::new)
    }
}

/// The why-not explanation engine.
#[derive(Debug, Clone, Default)]
pub struct WhyNotEngine {
    /// Engine configuration.
    pub config: EngineConfig,
}

impl WhyNotEngine {
    /// The full engine (`RP`): schema alternatives enabled.
    pub fn rp() -> Self {
        WhyNotEngine { config: EngineConfig::default() }
    }

    /// The restricted engine (`RPnoSA`): no schema alternatives.
    pub fn rp_no_sa() -> Self {
        WhyNotEngine {
            config: EngineConfig { use_schema_alternatives: false, ..EngineConfig::default() },
        }
    }

    /// Answers a why-not question.
    ///
    /// `attribute_alternatives` are the alternatives assumed to be provided as
    /// input (Section 5.2); they are ignored in `RPnoSA` mode.
    pub fn explain(
        &self,
        question: &WhyNotQuestion,
        attribute_alternatives: &[AttributeAlternative],
    ) -> WhyNotResult<WhyNotAnswer> {
        let original_result = {
            let _span = whynot_obs::span("validate");
            question.validate()?
        };
        let original_result_size = original_result.total();
        self.explain_unchecked(question, attribute_alternatives, original_result_size)
    }

    /// Like [`WhyNotEngine::explain`], but skips question validation (used by
    /// benchmarks that construct questions programmatically and have already
    /// validated them).
    pub fn explain_unchecked(
        &self,
        question: &WhyNotQuestion,
        attribute_alternatives: &[AttributeAlternative],
        original_result_size: u64,
    ) -> WhyNotResult<WhyNotAnswer> {
        self.explain_with_tracer(
            question,
            attribute_alternatives,
            original_result_size,
            &mut DirectTracer,
        )
    }

    /// Like [`WhyNotEngine::explain_unchecked`], but obtains the generalized
    /// trace from the given [`TraceProvider`] instead of recomputing it — the
    /// entry point used by callers that cache traces across questions.
    pub fn explain_with_tracer(
        &self,
        question: &WhyNotQuestion,
        attribute_alternatives: &[AttributeAlternative],
        original_result_size: u64,
        tracer: &mut dyn TraceProvider,
    ) -> WhyNotResult<WhyNotAnswer> {
        let plan = &question.plan;
        let db = &question.db;

        // An engine-stage boundary is the coarsest checkpoint granularity:
        // one deadline/cancellation check between the steps below, so a
        // tripped request stops before starting the next expensive stage.
        let stage_checkpoint =
            || whynot_guard::checkpoint().map_err(nrab_algebra::AlgebraError::from);

        // Step 1: schema backtracing.
        stage_checkpoint()?;
        let backtrace = {
            let _span = whynot_obs::span("backtrace");
            schema_backtrace(plan, db, &question.why_not)?
        };

        // Step 2: schema alternatives.
        stage_checkpoint()?;
        let alternatives =
            if self.config.use_schema_alternatives { attribute_alternatives } else { &[] };
        let sas = {
            let _span = whynot_obs::span("alternatives");
            let sas = enumerate_schema_alternatives(
                plan,
                db,
                &question.why_not,
                &backtrace,
                alternatives,
                self.config.max_schema_alternatives,
            )?;
            whynot_obs::add("sas", sas.len() as u64);
            sas
        };

        // Step 3: data tracing — the generalized (question-independent) part
        // comes from the provider, the consistency annotation is per-question.
        // (`trace_plan_generalized` and `annotate_consistency` open their own
        // spans; the provider span also covers cache lookups.)
        stage_checkpoint()?;
        let base = {
            let _span = whynot_obs::span("trace_provider");
            tracer.generalized_trace(plan, db, &sas)?
        };
        stage_checkpoint()?;
        let trace = annotate_consistency(&base, plan, &sas);

        // Step 4: approximate MSRs, side-effect bounds, ranking.
        stage_checkpoint()?;
        let _rank_span = whynot_obs::span("rank");
        let candidates = approximate_msrs(plan, &trace, &sas);
        whynot_obs::add("candidates", candidates.len() as u64);
        let ranked: Vec<RankedCandidate> = candidates
            .into_iter()
            .map(|candidate| {
                let bounds = side_effect_bounds(
                    plan,
                    &trace,
                    candidate.sa,
                    &candidate.ops,
                    original_result_size,
                );
                RankedCandidate { candidate, bounds }
            })
            .collect();
        let ranked = order_and_prune(ranked);
        whynot_obs::add("explanations", ranked.len() as u64);

        let explanations = ranked.into_iter().map(|r| build_explanation(plan, r)).collect();
        Ok(WhyNotAnswer { explanations, schema_alternatives: sas, original_result_size })
    }

    /// Convenience wrapper: answer a why-not question given plan, database,
    /// and NIP directly.
    pub fn explain_query(
        &self,
        plan: QueryPlan,
        db: nrab_algebra::Database,
        why_not: Nip,
        attribute_alternatives: &[AttributeAlternative],
    ) -> WhyNotResult<WhyNotAnswer> {
        let question = WhyNotQuestion::new(plan, db, why_not);
        self.explain(&question, attribute_alternatives)
    }
}

fn build_explanation(plan: &QueryPlan, ranked: RankedCandidate) -> Explanation {
    let mut labels = Vec::new();
    let mut kinds = Vec::new();
    for op in &ranked.candidate.ops {
        if let Ok(node) = plan.node(*op) {
            labels.push(format!("[{}] {}", node.id, node.op));
            kinds.push(node.op.kind_name().to_string());
        }
    }
    Explanation {
        operators: ranked.candidate.ops,
        operator_labels: labels,
        operator_kinds: kinds,
        schema_alternative: ranked.candidate.sa,
        side_effects: ranked.bounds,
    }
}

/// Evaluates the original query (helper shared by callers that need the
/// result size before calling [`WhyNotEngine::explain_unchecked`]).
pub fn original_result_size(plan: &QueryPlan, db: &nrab_algebra::Database) -> WhyNotResult<u64> {
    Ok(evaluate(plan, db)?.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_data::{Bag, NestedType, TupleType, Value};
    use nrab_algebra::expr::{CmpOp, Expr};
    use nrab_algebra::{Database, PlanBuilder};

    fn person_db() -> Database {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person_ty = TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address.clone())),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let addr = |city: &str, year: i64| {
            Value::tuple([("city", Value::str(city)), ("year", Value::int(year))])
        };
        let peter = Value::tuple([
            ("name", Value::str("Peter")),
            ("address1", Value::bag([addr("NY", 2010), addr("LA", 2019), addr("LV", 2017)])),
            ("address2", Value::bag([addr("LA", 2010), addr("SF", 2018)])),
        ]);
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
            ("address2", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
        ]);
        let mut db = Database::new();
        db.add_relation("person", person_ty, Bag::from_values([peter, sue]));
        db
    }

    fn running_example() -> QueryPlan {
        PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .project_attrs(&["name", "city"])
            .relation_nest(vec!["name"], "nList")
            .build()
            .unwrap()
    }

    fn why_not() -> Nip {
        Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))])
    }

    #[test]
    fn full_engine_reproduces_example_1_and_19() {
        let question = WhyNotQuestion::new(running_example(), person_db(), why_not());
        let answer = WhyNotEngine::rp()
            .explain(&question, &[AttributeAlternative::new("person", "address2", "address1")])
            .unwrap();
        assert_eq!(answer.schema_alternatives.len(), 2);
        assert_eq!(answer.original_result_size, 1);
        let sets = answer.operator_sets();
        assert_eq!(sets.len(), 2, "{sets:?}");
        // {σ} ranked before {F, σ} (Example 10 / Section 5.4).
        assert!(answer.explanations[0].is_exactly(&[2]));
        assert!(answer.explanations[1].is_exactly(&[1, 2]));
        assert_eq!(answer.position_of(&[2]), Some(1));
        assert_eq!(answer.position_of(&[1, 2]), Some(2));
        assert_eq!(answer.explanations[1].schema_alternative, 1);
        assert_eq!(answer.explanations[0].operator_kinds, vec!["σ"]);
        assert_eq!(answer.explanations[1].operator_kinds, vec!["Fᴵ", "σ"]);
        assert!(answer.explanations[0].operator_labels[0].contains("2019"));
    }

    #[test]
    fn rp_no_sa_finds_only_the_selection() {
        let question = WhyNotQuestion::new(running_example(), person_db(), why_not());
        let answer = WhyNotEngine::rp_no_sa()
            .explain(&question, &[AttributeAlternative::new("person", "address2", "address1")])
            .unwrap();
        assert_eq!(answer.schema_alternatives.len(), 1);
        assert_eq!(answer.operator_sets(), vec![BTreeSet::from([2])]);
    }

    #[test]
    fn invalid_questions_are_rejected() {
        // LA is already in the result.
        let question = WhyNotQuestion::new(
            running_example(),
            person_db(),
            Nip::tuple([("city", Nip::val("LA")), ("nList", Nip::Any)]),
        );
        assert!(WhyNotEngine::rp().explain(&question, &[]).is_err());
    }

    #[test]
    fn explain_query_convenience() {
        let answer = WhyNotEngine::rp()
            .explain_query(running_example(), person_db(), why_not(), &[])
            .unwrap();
        assert_eq!(answer.operator_sets(), vec![BTreeSet::from([2])]);
        assert_eq!(original_result_size(&running_example(), &person_db()).unwrap(), 1);
    }
}
