//! # whynot-core
//!
//! The paper's primary contribution: **query-based why-not explanations over
//! nested data**, computed by the heuristic algorithm of Section 5 and — for
//! small inputs — by an exact reparameterization enumerator matching the
//! formalization of Section 4.
//!
//! The heuristic pipeline ([`WhyNotEngine`]) follows Algorithm 1:
//!
//! 1. [`backtrace`] — schema backtracing (Section 5.1): rewrite the why-not
//!    NIP into per-operator consistency NIPs and per-input-relation NIPs, and
//!    collect the source attributes referenced by the query.
//! 2. [`alternatives`] — schema alternatives (Section 5.2): enumerate and
//!    prune attribute substitutions that preserve the output schema.
//! 3. data tracing (Section 5.3) — delegated to the `nrab-provenance` crate.
//! 4. [`msr`] — `approximateMSRs` (Algorithm 4) plus the loose side-effect
//!    bounds of Section 5.4 ([`side_effects`]) and the ranking of
//!    Definition 9 ([`rank`]).
//!
//! The exact algorithm ([`exact`]) enumerates reparameterizations over the
//! PTIME-restricted space of Theorem 1 and is used to validate the heuristic
//! on small instances (and in the test suite).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alternatives;
pub mod backtrace;
pub mod error;
pub mod exact;
pub mod explain;
pub mod msr;
pub mod question;
pub mod rank;
pub mod report;
pub mod side_effects;

pub use alternatives::AttributeAlternative;
pub use error::{WhyNotError, WhyNotResult};
pub use explain::{
    DirectTracer, EngineConfig, Explanation, TraceProvider, WhyNotAnswer, WhyNotEngine,
};
pub use question::WhyNotQuestion;
pub use side_effects::SideEffectBounds;
