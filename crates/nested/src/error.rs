//! Error type shared by the nested data model.

use std::fmt;

/// Errors raised while constructing or manipulating nested values, types,
/// paths, and NIPs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An attribute name was not found in a tuple or tuple type.
    UnknownAttribute {
        /// The attribute that was looked up.
        attribute: String,
        /// The attributes that are actually available. Interned names, so
        /// building this list is a single allocation with no string copies.
        available: Vec<&'static str>,
    },
    /// A path navigated into a value of an unexpected shape
    /// (e.g. asking for a field of a primitive).
    PathMismatch {
        /// The offending path (rendered).
        path: String,
        /// A description of what was found instead.
        found: String,
    },
    /// A value did not conform to the expected nested type.
    TypeMismatch {
        /// Human-readable description of the expectation.
        expected: String,
        /// Human-readable description of the actual value or type.
        found: String,
    },
    /// A NIP was structurally invalid (e.g. `*` outside of a bag, or two `*`
    /// placeholders in the same bag, violating Definition 3).
    InvalidNip(String),
    /// Two tuples could not be concatenated because attribute names collide.
    DuplicateAttribute(String),
    /// Generic invariant violation with a description.
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute { attribute, available } => {
                write!(f, "unknown attribute `{attribute}` (available: {})", available.join(", "))
            }
            DataError::PathMismatch { path, found } => {
                write!(f, "path `{path}` does not match value shape: {found}")
            }
            DataError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DataError::InvalidNip(msg) => write!(f, "invalid NIP: {msg}"),
            DataError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute `{name}` when concatenating tuples")
            }
            DataError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Result alias used throughout the crate.
pub type DataResult<T> = Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let err = DataError::UnknownAttribute {
            attribute: "city".into(),
            available: vec!["name", "year"],
        };
        let rendered = err.to_string();
        assert!(rendered.contains("city"));
        assert!(rendered.contains("name, year"));
    }

    #[test]
    fn display_type_mismatch() {
        let err = DataError::TypeMismatch { expected: "int".into(), found: "str".into() };
        assert_eq!(err.to_string(), "type mismatch: expected int, found str");
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(DataError::Invalid("boom".into()));
        assert_eq!(err.to_string(), "boom");
    }
}
