//! Nested relational types (Definition 1).
//!
//! The grammar of the paper is
//!
//! ```text
//! P ::= int | str | bool | ...        (primitive types)
//! T ::= ⟨A₁ : A, ..., Aₙ : A⟩          (tuple types)
//! R ::= {{ T }}                        (nested relation types)
//! A ::= P | T | R                      (attribute types)
//! ```
//!
//! A nested relation schema is an `R` type; a nested database schema is a set
//! of `R` types (represented by the algebra crate's `Database`). Attribute
//! names are interned [`Sym`]s, matching the instance representation.

use std::fmt;

use crate::error::{DataError, DataResult};
use crate::path::AttrPath;
use crate::sym::Sym;

/// Primitive types of the data model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimitiveType {
    /// Boolean values.
    Bool,
    /// 64-bit signed integers (also used for years and counts).
    Int,
    /// 64-bit floating-point numbers (prices, rates).
    Float,
    /// UTF-8 strings (also used for ISO dates, which compare lexicographically).
    Str,
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimitiveType::Bool => write!(f, "bool"),
            PrimitiveType::Int => write!(f, "int"),
            PrimitiveType::Float => write!(f, "float"),
            PrimitiveType::Str => write!(f, "str"),
        }
    }
}

/// A tuple type `⟨A₁ : τ₁, ..., Aₙ : τₙ⟩` with named, ordered attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TupleType {
    fields: Vec<(Sym, NestedType)>,
}

impl TupleType {
    /// Creates a tuple type from `(name, type)` pairs.
    ///
    /// Attribute names must be unique; duplicates yield an error.
    pub fn new<I, S>(fields: I) -> DataResult<Self>
    where
        I: IntoIterator<Item = (S, NestedType)>,
        S: Into<Sym>,
    {
        let fields: Vec<(Sym, NestedType)> =
            fields.into_iter().map(|(n, t)| (n.into(), t)).collect();
        for (i, (name, _)) in fields.iter().enumerate() {
            if fields.iter().skip(i + 1).any(|(other, _)| other == name) {
                return Err(DataError::DuplicateAttribute(name.as_str().to_string()));
            }
        }
        Ok(TupleType { fields })
    }

    /// Creates a tuple type without checking for duplicate names.
    ///
    /// Intended for internal use where uniqueness is already guaranteed.
    pub fn from_fields(fields: Vec<(Sym, NestedType)>) -> Self {
        TupleType { fields }
    }

    /// The empty tuple type `⟨⟩`.
    pub fn empty() -> Self {
        TupleType { fields: Vec::new() }
    }

    /// The `(name, type)` pairs in declaration order.
    pub fn fields(&self) -> &[(Sym, NestedType)] {
        &self.fields
    }

    /// The attribute names in declaration order (the paper's `sch(R)`),
    /// without allocating.
    pub fn attribute_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// The attribute symbols in declaration order.
    pub fn attribute_syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.fields.iter().map(|(n, _)| *n)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the tuple type has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks up the type of attribute `name`.
    pub fn attribute(&self, name: impl Into<Sym>) -> Option<&NestedType> {
        let sym = name.into();
        self.fields.iter().find(|(n, _)| *n == sym).map(|(_, t)| t)
    }

    /// Whether the tuple type contains attribute `name`.
    pub fn contains(&self, name: impl Into<Sym>) -> bool {
        self.attribute(name).is_some()
    }

    /// Looks up the type of attribute `name`, erroring if absent. The error
    /// (with its list of available attributes) is only built on the miss path.
    pub fn attribute_required(&self, name: impl Into<Sym>) -> DataResult<&NestedType> {
        let sym = name.into();
        match self.attribute(sym) {
            Some(t) => Ok(t),
            None => Err(self.unknown_attribute(sym)),
        }
    }

    #[cold]
    #[inline(never)]
    fn unknown_attribute(&self, sym: Sym) -> DataError {
        DataError::UnknownAttribute {
            attribute: sym.as_str().to_string(),
            available: self.attribute_names().collect(),
        }
    }

    /// Resolves a (possibly nested) attribute path starting at this tuple type.
    ///
    /// Path segments traverse tuple attributes directly and "step into" the
    /// element type of nested relations, mirroring how schema backtracing
    /// interprets source-attribute paths such as `address2.city`.
    pub fn resolve_path(&self, path: &AttrPath) -> DataResult<&NestedType> {
        let mut current_tuple = self;
        let segments = path.segments();
        if segments.is_empty() {
            return Err(DataError::Invalid("empty attribute path".into()));
        }
        for (i, segment) in segments.iter().enumerate() {
            let ty = current_tuple.attribute_required(*segment)?;
            if i + 1 == segments.len() {
                return Ok(ty);
            }
            current_tuple = match ty {
                NestedType::Tuple(t) => t,
                NestedType::Relation(t) => t,
                NestedType::Prim(_) => {
                    return Err(DataError::PathMismatch {
                        path: path.to_string(),
                        found: format!("primitive at segment `{segment}`"),
                    })
                }
            };
        }
        unreachable!("loop returns on last segment")
    }

    /// Projects this tuple type onto the given attribute names, preserving the
    /// requested order. Unknown attributes yield an error.
    pub fn project<S: Into<Sym> + Copy>(&self, names: &[S]) -> DataResult<TupleType> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let sym = (*name).into();
            let ty = self.attribute_required(sym)?.clone();
            fields.push((sym, ty));
        }
        TupleType::new(fields)
    }

    /// Concatenates two tuple types (the paper's `◦` on tuple types).
    ///
    /// Attribute names must be disjoint.
    pub fn concat(&self, other: &TupleType) -> DataResult<TupleType> {
        let mut fields = self.fields.clone();
        for (name, ty) in &other.fields {
            if self.contains(*name) {
                return Err(DataError::DuplicateAttribute(name.as_str().to_string()));
            }
            fields.push((*name, ty.clone()));
        }
        Ok(TupleType { fields })
    }

    /// Returns a copy with the named attribute removed (no-op if absent).
    /// Names are converted to symbols once per call (on the stack for up to
    /// 8 names), so the per-field filter is pure integer compares.
    pub fn without<S: Into<Sym> + Copy>(&self, names: &[S]) -> TupleType {
        let Some(&first) = names.first() else { return self.clone() };
        let mut inline = [first.into(); 8];
        let heap: Vec<Sym>;
        let syms: &[Sym] = if names.len() <= inline.len() {
            for (slot, name) in inline.iter_mut().zip(names.iter()) {
                *slot = (*name).into();
            }
            &inline[..names.len()]
        } else {
            heap = names.iter().map(|n| (*n).into()).collect();
            &heap
        };
        TupleType {
            fields: self.fields.iter().filter(|(n, _)| !syms.contains(n)).cloned().collect(),
        }
    }

    /// Returns a copy with an additional attribute appended.
    pub fn with_attribute(&self, name: impl Into<Sym>, ty: NestedType) -> DataResult<TupleType> {
        let name = name.into();
        if self.contains(name) {
            return Err(DataError::DuplicateAttribute(name.as_str().to_string()));
        }
        let mut fields = self.fields.clone();
        fields.push((name, ty));
        Ok(TupleType { fields })
    }

    /// Renames attributes according to `(old, new)` pairs; attributes not
    /// mentioned keep their name.
    pub fn rename(&self, mapping: &[(Sym, Sym)]) -> DataResult<TupleType> {
        let mut fields = Vec::with_capacity(self.fields.len());
        for (name, ty) in &self.fields {
            let new_name =
                mapping.iter().find(|(old, _)| old == name).map(|(_, new)| *new).unwrap_or(*name);
            fields.push((new_name, ty.clone()));
        }
        TupleType::new(fields)
    }
}

impl fmt::Display for TupleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (name, ty)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {ty}")?;
        }
        write!(f, "⟩")
    }
}

/// A nested type: primitive, tuple, or nested relation (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NestedType {
    /// A primitive type.
    Prim(PrimitiveType),
    /// A tuple type.
    Tuple(TupleType),
    /// A nested relation type `{{ T }}` (a bag of tuples of type `T`).
    Relation(TupleType),
}

impl NestedType {
    /// Shorthand for `NestedType::Prim(PrimitiveType::Int)`.
    pub fn int() -> Self {
        NestedType::Prim(PrimitiveType::Int)
    }

    /// Shorthand for `NestedType::Prim(PrimitiveType::Str)`.
    pub fn str() -> Self {
        NestedType::Prim(PrimitiveType::Str)
    }

    /// Shorthand for `NestedType::Prim(PrimitiveType::Bool)`.
    pub fn bool() -> Self {
        NestedType::Prim(PrimitiveType::Bool)
    }

    /// Shorthand for `NestedType::Prim(PrimitiveType::Float)`.
    pub fn float() -> Self {
        NestedType::Prim(PrimitiveType::Float)
    }

    /// Builds a relation type from `(name, type)` pairs.
    pub fn relation_of<I, S>(fields: I) -> DataResult<Self>
    where
        I: IntoIterator<Item = (S, NestedType)>,
        S: Into<Sym>,
    {
        Ok(NestedType::Relation(TupleType::new(fields)?))
    }

    /// Builds a tuple type from `(name, type)` pairs.
    pub fn tuple_of<I, S>(fields: I) -> DataResult<Self>
    where
        I: IntoIterator<Item = (S, NestedType)>,
        S: Into<Sym>,
    {
        Ok(NestedType::Tuple(TupleType::new(fields)?))
    }

    /// Whether the type is primitive.
    pub fn is_primitive(&self) -> bool {
        matches!(self, NestedType::Prim(_))
    }

    /// Whether the type is a tuple type.
    pub fn is_tuple(&self) -> bool {
        matches!(self, NestedType::Tuple(_))
    }

    /// Whether the type is a nested relation type.
    pub fn is_relation(&self) -> bool {
        matches!(self, NestedType::Relation(_))
    }

    /// The tuple type of a tuple- or relation-typed attribute.
    pub fn as_tuple_type(&self) -> Option<&TupleType> {
        match self {
            NestedType::Tuple(t) | NestedType::Relation(t) => Some(t),
            NestedType::Prim(_) => None,
        }
    }

    /// Two types are *compatible* if they are structurally equal, ignoring
    /// attribute order inside tuple types. This is the notion used when
    /// checking that an attribute alternative has "matching type" (Section 5.2)
    /// and when validating union inputs.
    pub fn is_compatible_with(&self, other: &NestedType) -> bool {
        match (self, other) {
            (NestedType::Prim(a), NestedType::Prim(b)) => a == b,
            (NestedType::Tuple(a), NestedType::Tuple(b))
            | (NestedType::Relation(a), NestedType::Relation(b)) => {
                if a.arity() != b.arity() {
                    return false;
                }
                a.fields().iter().all(|(name, ty)| {
                    b.attribute(*name).map(|t| ty.is_compatible_with(t)).unwrap_or(false)
                })
            }
            _ => false,
        }
    }
}

impl fmt::Display for NestedType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestedType::Prim(p) => write!(f, "{p}"),
            NestedType::Tuple(t) => write!(f, "{t}"),
            NestedType::Relation(t) => write!(f, "{{{{{t}}}}}"),
        }
    }
}

impl From<PrimitiveType> for NestedType {
    fn from(p: PrimitiveType) -> Self {
        NestedType::Prim(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn address_type() -> TupleType {
        TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap()
    }

    fn person_type() -> TupleType {
        TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address_type())),
            ("address2", NestedType::Relation(address_type())),
        ])
        .unwrap()
    }

    #[test]
    fn tuple_type_rejects_duplicates() {
        let err = TupleType::new([("a", NestedType::int()), ("a", NestedType::str())]);
        assert!(matches!(err, Err(DataError::DuplicateAttribute(_))));
    }

    #[test]
    fn attribute_lookup() {
        let ty = person_type();
        assert_eq!(ty.attribute("name"), Some(&NestedType::str()));
        assert!(ty.attribute("missing").is_none());
        assert!(ty.attribute_required("missing").is_err());
        assert_eq!(ty.arity(), 3);
        assert_eq!(ty.attribute_names().collect::<Vec<_>>(), vec!["name", "address1", "address2"]);
        assert_eq!(ty.attribute_syms().count(), 3);
    }

    #[test]
    fn resolve_path_through_relation() {
        let ty = person_type();
        let path = AttrPath::parse("address2.city");
        assert_eq!(ty.resolve_path(&path).unwrap(), &NestedType::str());
        let bad = AttrPath::parse("name.city");
        assert!(ty.resolve_path(&bad).is_err());
    }

    #[test]
    fn project_and_concat() {
        let ty = person_type();
        let projected = ty.project(&["name"]).unwrap();
        assert_eq!(projected.arity(), 1);
        let extra = TupleType::new([("age", NestedType::int())]).unwrap();
        let combined = projected.concat(&extra).unwrap();
        assert_eq!(combined.attribute_names().collect::<Vec<_>>(), vec!["name", "age"]);
        // Concatenation with a colliding name fails.
        assert!(combined.concat(&extra).is_err());
    }

    #[test]
    fn rename_and_without() {
        let ty = address_type();
        let renamed = ty.rename(&[("city".into(), "town".into())]).unwrap();
        assert!(renamed.contains("town"));
        assert!(!renamed.contains("city"));
        let smaller = ty.without(&["year"]);
        assert_eq!(smaller.attribute_names().collect::<Vec<_>>(), vec!["city"]);
    }

    #[test]
    fn compatibility_ignores_field_order() {
        let a = TupleType::new([("x", NestedType::int()), ("y", NestedType::str())]).unwrap();
        let b = TupleType::new([("y", NestedType::str()), ("x", NestedType::int())]).unwrap();
        assert!(NestedType::Tuple(a.clone()).is_compatible_with(&NestedType::Tuple(b.clone())));
        assert!(!NestedType::Tuple(a).is_compatible_with(&NestedType::Relation(b)));
    }

    #[test]
    fn display_forms() {
        let ty = NestedType::Relation(address_type());
        assert_eq!(ty.to_string(), "{{⟨city: str, year: int⟩}}");
        assert_eq!(NestedType::int().to_string(), "int");
    }

    #[test]
    fn with_attribute_appends() {
        let ty = address_type().with_attribute("zip", NestedType::int()).unwrap();
        assert_eq!(ty.attribute_names().collect::<Vec<_>>(), vec!["city", "year", "zip"]);
        assert!(ty.with_attribute("zip", NestedType::int()).is_err());
    }
}
