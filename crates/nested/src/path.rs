//! Attribute paths.
//!
//! An [`AttrPath`] is a dotted sequence of attribute names such as
//! `address2.city` or `entities.media.url`. Paths navigate through tuple
//! attributes and *into* the element tuples of nested relations. They are the
//! vocabulary in which schema backtracing records source attributes and in
//! which users specify attribute alternatives (Section 5.2).
//!
//! Segments are interned [`Sym`]s, so navigating a path through tuples
//! compares integers and copying paths never copies name strings.

use std::fmt;

use crate::sym::Sym;

/// A dotted attribute path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrPath {
    segments: Vec<Sym>,
}

impl AttrPath {
    /// Builds a path from individual segments.
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Sym>,
    {
        AttrPath { segments: segments.into_iter().map(Into::into).collect() }
    }

    /// Parses a dotted path such as `"address2.city"`.
    pub fn parse(path: &str) -> Self {
        AttrPath { segments: path.split('.').filter(|s| !s.is_empty()).map(Sym::intern).collect() }
    }

    /// A single-segment path.
    pub fn single(name: impl Into<Sym>) -> Self {
        AttrPath { segments: vec![name.into()] }
    }

    /// The path segments.
    pub fn segments(&self) -> &[Sym] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The first segment, if any.
    pub fn head(&self) -> Option<Sym> {
        self.segments.first().copied()
    }

    /// The last segment, if any (the attribute ultimately referenced).
    pub fn leaf(&self) -> Option<Sym> {
        self.segments.last().copied()
    }

    /// The path with the first segment removed.
    pub fn tail(&self) -> AttrPath {
        AttrPath { segments: self.segments[1.min(self.segments.len())..].to_vec() }
    }

    /// The path with the last segment removed (its "parent").
    pub fn parent(&self) -> AttrPath {
        let mut segments = self.segments.clone();
        segments.pop();
        AttrPath { segments }
    }

    /// Appends a segment, returning a new path.
    pub fn child(&self, name: impl Into<Sym>) -> AttrPath {
        let mut segments = self.segments.clone();
        segments.push(name.into());
        AttrPath { segments }
    }

    /// Concatenates two paths.
    pub fn join(&self, other: &AttrPath) -> AttrPath {
        let mut segments = self.segments.clone();
        segments.extend_from_slice(&other.segments);
        AttrPath { segments }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &AttrPath) -> bool {
        if self.segments.len() > other.segments.len() {
            return false;
        }
        self.segments.iter().zip(other.segments.iter()).all(|(a, b)| a == b)
    }

    /// If `prefix` is a prefix of `self`, returns the remainder of the path.
    pub fn strip_prefix(&self, prefix: &AttrPath) -> Option<AttrPath> {
        if prefix.is_prefix_of(self) {
            Some(AttrPath { segments: self.segments[prefix.len()..].to_vec() })
        } else {
            None
        }
    }

    /// Replaces the prefix `old` by `new`, if `old` is a prefix of `self`.
    ///
    /// Used when a schema alternative substitutes one source attribute for
    /// another (e.g. replacing `address2` by `address1` turns
    /// `address2.year` into `address1.year`).
    pub fn replace_prefix(&self, old: &AttrPath, new: &AttrPath) -> Option<AttrPath> {
        self.strip_prefix(old).map(|rest| new.join(&rest))
    }
}

impl fmt::Display for AttrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{segment}")?;
        }
        Ok(())
    }
}

impl From<&str> for AttrPath {
    fn from(s: &str) -> Self {
        AttrPath::parse(s)
    }
}

impl From<String> for AttrPath {
    fn from(s: String) -> Self {
        AttrPath::parse(&s)
    }
}

impl From<Sym> for AttrPath {
    fn from(s: Sym) -> Self {
        AttrPath::single(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = AttrPath::parse("address2.city");
        assert_eq!(p.segments(), &[Sym::intern("address2"), Sym::intern("city")]);
        assert_eq!(p.to_string(), "address2.city");
        assert_eq!(AttrPath::parse("").len(), 0);
    }

    #[test]
    fn head_tail_leaf_parent() {
        let p = AttrPath::parse("a.b.c");
        assert_eq!(p.head(), Some(Sym::intern("a")));
        assert_eq!(p.leaf(), Some(Sym::intern("c")));
        assert_eq!(p.tail().to_string(), "b.c");
        assert_eq!(p.parent().to_string(), "a.b");
        assert_eq!(p.child("d").to_string(), "a.b.c.d");
        assert!(AttrPath::parse("").tail().is_empty());
    }

    #[test]
    fn prefix_operations() {
        let p = AttrPath::parse("address2.city");
        let prefix = AttrPath::single("address2");
        assert!(prefix.is_prefix_of(&p));
        assert!(!p.is_prefix_of(&prefix));
        assert_eq!(p.strip_prefix(&prefix).unwrap().to_string(), "city");
        assert_eq!(
            p.replace_prefix(&prefix, &AttrPath::single("address1")).unwrap().to_string(),
            "address1.city"
        );
        assert!(p.replace_prefix(&AttrPath::single("name"), &prefix).is_none());
    }

    #[test]
    fn join_paths() {
        let a = AttrPath::parse("entities.media");
        let b = AttrPath::parse("url");
        assert_eq!(a.join(&b).to_string(), "entities.media.url");
    }

    #[test]
    fn conversions() {
        let p: AttrPath = "user.name".into();
        assert_eq!(p.len(), 2);
        let p: AttrPath = String::from("x").into();
        assert_eq!(p.leaf(), Some(Sym::intern("x")));
        let p: AttrPath = Sym::intern("y").into();
        assert_eq!(p.len(), 1);
    }
}
