//! Bags (multisets) of nested values.
//!
//! A [`Bag`] stores distinct values together with their multiplicities in a
//! canonical (sorted) order, which makes bag equality, hashing, and ordering
//! well-defined and deterministic. Bags are used both as nested relation
//! *values* (attributes of relation type) and as the top-level relations of a
//! database.
//!
//! Bags should be built through [`BagBuilder`] (which all the batch
//! constructors use internally): it deduplicates entries in a hash map — one
//! structural hash per inserted value instead of `O(log n)` deep comparisons
//! plus a `Vec::insert` shift — and sorts into canonical order once at
//! [`BagBuilder::finish`]. The resulting entry order is identical to what
//! repeated [`Bag::insert`] calls produce; only the construction cost differs.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::columnar::{self, ColumnarBag};
use crate::value::Value;

/// A bag `{{ v₁ⁿ¹, v₂ⁿ², ... }}` of nested values with multiplicities.
#[derive(Debug, Clone, Default)]
pub struct Bag {
    /// Distinct values with positive multiplicities, kept sorted by value.
    entries: Vec<(Value, u64)>,
    /// Lazily built columnar form (see [`Bag::columnar`]): `None` once
    /// computed means the bag is not eligible. The cache never affects
    /// equality, ordering, or hashing, and [`Bag::insert`] invalidates it.
    columnar: OnceLock<Option<Arc<ColumnarBag>>>,
}

/// Accumulates `(value, multiplicity)` entries in a hash map and produces a
/// canonical [`Bag`] in one sort at the end.
///
/// Equal values are merged by their structural hash (with equality confirmed
/// on collision), so building a bag of `n` insertions costs `n` hashes plus a
/// single `O(d log d)` sort over the `d` distinct values — instead of the
/// `O(n·d)` deep-comparison binary-search-and-shift of per-insert
/// canonicalization.
#[derive(Debug, Default)]
pub struct BagBuilder {
    // `Value`'s interior mutability is limited to its lazily cached
    // structural hash, which never changes its `Eq`/`Hash` identity.
    #[allow(clippy::mutable_key_type)]
    entries: HashMap<Value, u64>,
}

impl BagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        BagBuilder { entries: HashMap::new() }
    }

    /// An empty builder with capacity for `n` distinct values.
    pub fn with_capacity(n: usize) -> Self {
        BagBuilder { entries: HashMap::with_capacity(n) }
    }

    /// Adds `mult` copies of `value`. Adding zero copies is a no-op.
    pub fn add(&mut self, value: Value, mult: u64) {
        if mult == 0 {
            return;
        }
        *self.entries.entry(value).or_insert(0) += mult;
    }

    /// Adds one copy of `value`.
    pub fn push(&mut self, value: Value) {
        self.add(value, 1);
    }

    /// Number of distinct values accumulated so far.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts the accumulated entries into canonical order and returns the bag.
    pub fn finish(self) -> Bag {
        let mut entries: Vec<(Value, u64)> = self.entries.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Bag::from_vec(entries)
    }
}

impl Extend<Value> for BagBuilder {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl Extend<(Value, u64)> for BagBuilder {
    fn extend<T: IntoIterator<Item = (Value, u64)>>(&mut self, iter: T) {
        for (v, m) in iter {
            self.add(v, m);
        }
    }
}

impl Bag {
    /// The empty bag `{{}}`.
    pub fn new() -> Self {
        Bag::from_vec(Vec::new())
    }

    /// Internal constructor: wraps already-canonical entries with an empty
    /// columnar cache.
    fn from_vec(entries: Vec<(Value, u64)>) -> Self {
        Bag { entries, columnar: OnceLock::new() }
    }

    /// Builds a bag from entries that are **already canonical**: sorted
    /// strictly ascending by value, with positive multiplicities — e.g.
    /// entries filtered (in order) from an existing bag's [`Bag::iter`].
    /// Canonicality is debug-asserted.
    pub fn from_canonical_entries(entries: Vec<(Value, u64)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be sorted and distinct"
        );
        debug_assert!(entries.iter().all(|(_, m)| *m > 0), "multiplicities must be positive");
        Bag::from_vec(entries)
    }

    /// The columnar form of this bag, if it is *wide and flat*: at least
    /// [`columnar::MIN_COLUMNAR_ROWS`] distinct rows, every row a tuple of at
    /// least [`columnar::MIN_COLUMNAR_ARITY`] attributes with the same names
    /// in the same order, and every field a scalar.
    ///
    /// The conversion runs once per bag and is cached, so shared relations
    /// (`Arc<Bag>` in a database) convert once no matter how many scans
    /// consume them. Returns `None` without touching the cache while the
    /// columnar path is disabled via [`columnar::with_columnar`].
    pub fn columnar(&self) -> Option<Arc<ColumnarBag>> {
        if !columnar::columnar_enabled() {
            return None;
        }
        self.columnar.get_or_init(|| columnar::build_columnar(self)).clone()
    }

    /// Builds a bag from an iterator of values (each contributing multiplicity 1).
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let mut builder = BagBuilder::new();
        builder.extend(values);
        builder.finish()
    }

    /// Builds a bag from `(value, multiplicity)` pairs.
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Value, u64)>,
    {
        let mut builder = BagBuilder::new();
        builder.extend(entries);
        builder.finish()
    }

    /// Inserts `mult` copies of `value`. Inserting zero copies is a no-op.
    ///
    /// Prefer [`BagBuilder`] when constructing a bag from many values; this
    /// per-insert path re-canonicalizes incrementally.
    pub fn insert(&mut self, value: Value, mult: u64) {
        if mult == 0 {
            return;
        }
        self.columnar = OnceLock::new();
        match self.entries.binary_search_by(|(v, _)| v.cmp(&value)) {
            Ok(idx) => self.entries[idx].1 += mult,
            Err(idx) => self.entries.insert(idx, (value, mult)),
        }
    }

    /// The multiplicity of `value` in the bag (`mult(R, t)`); zero if absent.
    pub fn mult(&self, value: &Value) -> u64 {
        match self.entries.binary_search_by(|(v, _)| v.cmp(value)) {
            Ok(idx) => self.entries[idx].1,
            Err(_) => 0,
        }
    }

    /// Whether the bag contains at least one copy of `value`.
    pub fn contains(&self, value: &Value) -> bool {
        self.mult(value) > 0
    }

    /// Total number of elements counting multiplicities (`|R|`).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, m)| m).sum()
    }

    /// Number of *distinct* values.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(value, multiplicity)` entries in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, u64)> {
        self.entries.iter()
    }

    /// Iterates over values, repeating each according to its multiplicity.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().flat_map(|(v, m)| std::iter::repeat_n(v, *m as usize))
    }

    /// Consumes the bag and returns its entries.
    pub fn into_entries(self) -> Vec<(Value, u64)> {
        self.entries
    }

    /// Additive union `R ∪ S` (multiplicities add).
    pub fn union(&self, other: &Bag) -> Bag {
        // Both inputs are sorted: a linear merge preserves canonical order
        // without re-sorting.
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut left = self.entries.iter().peekable();
        let mut right = other.entries.iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some((lv, lm)), Some((rv, rm))) => match lv.cmp(rv) {
                    Ordering::Less => {
                        entries.push((lv.clone(), *lm));
                        left.next();
                    }
                    Ordering::Greater => {
                        entries.push((rv.clone(), *rm));
                        right.next();
                    }
                    Ordering::Equal => {
                        entries.push((lv.clone(), lm + rm));
                        left.next();
                        right.next();
                    }
                },
                (Some((lv, lm)), None) => {
                    entries.push((lv.clone(), *lm));
                    left.next();
                }
                (None, Some((rv, rm))) => {
                    entries.push((rv.clone(), *rm));
                    right.next();
                }
                (None, None) => break,
            }
        }
        Bag::from_vec(entries)
    }

    /// Bag difference `R − S` (multiplicities subtract, floored at zero).
    pub fn difference(&self, other: &Bag) -> Bag {
        let mut entries = Vec::new();
        for (v, m) in self.iter() {
            let other_m = other.mult(v);
            if *m > other_m {
                entries.push((v.clone(), m - other_m));
            }
        }
        Bag::from_vec(entries)
    }

    /// Duplicate elimination `δ(R)`: every distinct value with multiplicity 1.
    pub fn dedup(&self) -> Bag {
        Bag::from_vec(self.entries.iter().map(|(v, _)| (v.clone(), 1)).collect())
    }

    /// Maps every distinct value through `f`, preserving multiplicities.
    pub fn map_values<F>(&self, mut f: F) -> Bag
    where
        F: FnMut(&Value) -> Value,
    {
        let mut builder = BagBuilder::with_capacity(self.entries.len());
        for (v, m) in &self.entries {
            builder.add(f(v), *m);
        }
        builder.finish()
    }

    /// Retains only entries whose value satisfies the predicate.
    pub fn filter<F>(&self, mut pred: F) -> Bag
    where
        F: FnMut(&Value) -> bool,
    {
        Bag::from_vec(self.entries.iter().filter(|(v, _)| pred(v)).cloned().collect())
    }

    /// Groups the bag's elements by a key extracted from each value.
    ///
    /// Returns `(key, bag of values with that key)` pairs in canonical key
    /// order. Used by relation nesting and grouped aggregation.
    pub fn group_by<F>(&self, mut key: F) -> Vec<(Value, Bag)>
    where
        F: FnMut(&Value) -> Value,
    {
        // `Value` only carries interior mutability in its lazily cached
        // structural hash, which never changes its `Eq`/`Hash` identity.
        #[allow(clippy::mutable_key_type)]
        let mut groups: HashMap<Value, BagBuilder> = HashMap::new();
        for (v, m) in self.iter() {
            groups.entry(key(v)).or_default().add(v.clone(), *m);
        }
        let mut out: Vec<(Value, Bag)> = groups.into_iter().map(|(k, b)| (k, b.finish())).collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for Bag {}

impl PartialOrd for Bag {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bag {
    fn cmp(&self, other: &Self) -> Ordering {
        self.entries.cmp(&other.entries)
    }
}

impl Hash for Bag {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for (v, m) in &self.entries {
            v.hash(state);
            m.hash(state);
        }
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{{")?;
        let mut first = true;
        for (v, m) in &self.entries {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if *m == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{m}")?;
            }
        }
        write!(f, "}}}}")
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Bag::from_values(iter)
    }
}

impl FromIterator<(Value, u64)> for Bag {
    fn from_iter<T: IntoIterator<Item = (Value, u64)>>(iter: T) -> Self {
        Bag::from_entries(iter)
    }
}

impl IntoIterator for Bag {
    type Item = (Value, u64);
    type IntoIter = std::vec::IntoIter<(Value, u64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, n: i64) -> Value {
        Value::tuple([("name", Value::str(name)), ("n", Value::int(n))])
    }

    #[test]
    fn insert_aggregates_multiplicities() {
        let mut bag = Bag::new();
        bag.insert(Value::int(1), 2);
        bag.insert(Value::int(1), 3);
        bag.insert(Value::int(2), 1);
        bag.insert(Value::int(3), 0);
        assert_eq!(bag.mult(&Value::int(1)), 5);
        assert_eq!(bag.mult(&Value::int(2)), 1);
        assert_eq!(bag.mult(&Value::int(3)), 0);
        assert_eq!(bag.total(), 6);
        assert_eq!(bag.distinct(), 2);
    }

    #[test]
    fn builder_matches_insert_semantics() {
        let values =
            [t("Sue", 1), t("Peter", 2), t("Sue", 1), Value::int(7), Value::str("x"), t("Ann", 0)];
        let mut via_insert = Bag::new();
        for v in &values {
            via_insert.insert(v.clone(), 1);
        }
        let mut builder = BagBuilder::new();
        for v in &values {
            builder.push(v.clone());
        }
        assert_eq!(builder.distinct(), 5);
        assert!(!builder.is_empty());
        let via_builder = builder.finish();
        assert_eq!(via_builder, via_insert);
        // Canonical entry order is identical, not just bag equality.
        assert_eq!(via_builder.into_entries(), via_insert.into_entries());
        assert!(BagBuilder::with_capacity(4).finish().is_empty());
    }

    #[test]
    fn builder_zero_multiplicity_is_noop() {
        let mut builder = BagBuilder::new();
        builder.add(Value::int(1), 0);
        assert!(builder.is_empty());
        builder.extend([(Value::int(2), 3u64)]);
        let bag = builder.finish();
        assert_eq!(bag.mult(&Value::int(2)), 3);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a = Bag::from_values([Value::int(1), Value::int(2), Value::int(1)]);
        let b = Bag::from_values([Value::int(2), Value::int(1), Value::int(1)]);
        assert_eq!(a, b);
        let c = Bag::from_values([Value::int(1), Value::int(2)]);
        assert_ne!(a, c);
    }

    #[test]
    fn union_difference_dedup() {
        let a = Bag::from_entries([(Value::int(1), 2), (Value::int(2), 1)]);
        let b = Bag::from_entries([(Value::int(1), 1), (Value::int(3), 4)]);
        let u = a.union(&b);
        assert_eq!(u.mult(&Value::int(1)), 3);
        assert_eq!(u.mult(&Value::int(3)), 4);
        let d = a.difference(&b);
        assert_eq!(d.mult(&Value::int(1)), 1);
        assert_eq!(d.mult(&Value::int(2)), 1);
        assert_eq!(d.mult(&Value::int(3)), 0);
        let dd = u.dedup();
        assert_eq!(dd.total(), 3);
        assert!(dd.iter().all(|(_, m)| *m == 1));
    }

    #[test]
    fn union_merge_preserves_canonical_order() {
        let a = Bag::from_values([Value::int(5), Value::int(1), Value::int(3)]);
        let b = Bag::from_values([Value::int(4), Value::int(1), Value::int(0)]);
        let merged = a.union(&b);
        let mut expected = a.clone();
        for (v, m) in b.iter() {
            expected.insert(v.clone(), *m);
        }
        assert_eq!(merged.into_entries(), expected.into_entries());
    }

    #[test]
    fn expanded_iteration_respects_multiplicities() {
        let bag = Bag::from_entries([(Value::int(7), 3)]);
        assert_eq!(bag.iter_expanded().count(), 3);
    }

    #[test]
    fn group_by_key() {
        let bag = Bag::from_values([t("Sue", 1), t("Sue", 2), t("Peter", 3)]);
        let groups = bag.group_by(|v| v.as_tuple().unwrap().get("name").unwrap().clone());
        assert_eq!(groups.len(), 2);
        let (sue_key, sue_group) = groups.iter().find(|(k, _)| k == &Value::str("Sue")).unwrap();
        assert_eq!(sue_key, &Value::str("Sue"));
        assert_eq!(sue_group.total(), 2);
        // Group keys come back in canonical (sorted) order.
        assert!(groups.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn filter_and_map() {
        let bag = Bag::from_values([Value::int(1), Value::int(2), Value::int(3)]);
        let evens = bag.filter(|v| v.as_int().unwrap() % 2 == 0);
        assert_eq!(evens.total(), 1);
        let doubled = bag.map_values(|v| Value::int(v.as_int().unwrap() * 2));
        assert_eq!(doubled.mult(&Value::int(6)), 1);
    }

    #[test]
    fn display_shows_multiplicities() {
        let bag = Bag::from_entries([(Value::int(1), 2)]);
        assert_eq!(bag.to_string(), "{{1^2}}");
        assert_eq!(Bag::new().to_string(), "{{}}");
    }
}
