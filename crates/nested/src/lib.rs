//! # nested-data
//!
//! The nested relational data model used throughout the `whynot-nested`
//! workspace. It is a direct implementation of Section 3.1 of
//! *"To Not Miss the Forest for the Trees"* (SIGMOD 2021):
//!
//! * **Nested relation schemas** ([`NestedType`], [`TupleType`], Definition 1):
//!   attributes are primitives, tuples, or nested relations (bags of tuples).
//! * **Nested relation instances** ([`Value`], [`Tuple`], [`Bag`], Definition 2):
//!   bag semantics with explicit multiplicities and a distinguished null value
//!   `⊥` that inhabits every type.
//! * **Nested instances with placeholders** ([`Nip`], Definitions 3 and 4):
//!   the instance placeholder `?` and the multiplicity placeholder `*`, together
//!   with the assignment-based matching relation `≃` used to pose why-not
//!   questions.
//! * **Attribute paths** ([`AttrPath`]): dotted paths such as `address2.city`
//!   that navigate through tuple and relation nesting, used by schema
//!   backtracing and schema alternatives.
//! * **Tree views and tree edit distance** ([`tree`]): the unordered-tree view
//!   of nested values from Figure 2 and the distance function `d` used in the
//!   side-effect component of the MSR partial order (Definition 9).
//!
//! The representation is a shared-immutable value layer: attribute names are
//! interned symbols ([`Sym`]), compound values live behind `Arc`s (so
//! `Value::clone` is O(1) and subtrees are shared structurally, with
//! copy-on-write mutation), and bags are built through [`BagBuilder`]
//! (hash-deduplicated, canonicalized once). None of this is observable in the
//! semantics: name-based tuple equality, the total value order, and the
//! deterministic canonical bag order are exactly those of a naive
//! `String`-keyed, deep-copying representation.
//!
//! The crate has no dependencies and is deliberately self-contained so that the
//! algebra, provenance, and explanation crates can all share one value model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bag;
pub mod columnar;
pub mod error;
pub mod nip;
pub mod path;
pub mod sym;
pub mod tree;
pub mod tuple;
pub mod types;
pub mod value;

pub use bag::{Bag, BagBuilder};
pub use columnar::{with_columnar, Column, ColumnSlice, ColumnarBag};
pub use error::{DataError, DataResult};
pub use nip::{Nip, NipCmp};
pub use path::AttrPath;
pub use sym::Sym;
pub use tree::{tree_distance, ValueTree};
pub use tuple::Tuple;
pub use types::{NestedType, PrimitiveType, TupleType};
pub use value::Value;
