//! Tree views of nested values and the distance function `d` of Definition 9.
//!
//! Figure 2 of the paper depicts nested relations as unordered, labeled trees:
//! tuples become `⟨⟩` nodes whose children are their attributes, nested
//! relations become `{{}}` nodes whose children are their element tuples, and
//! primitive attributes become leaves labeled `attr: value`.
//!
//! The paper proposes the *tree edit distance for unordered trees* as the
//! side-effect metric, noting that it is NP-hard in general. We implement the
//! *constrained* edit distance (descendants must stay descendants, i.e. child
//! forests are matched one-to-one), which is polynomial, upper-bounds the
//! unconstrained distance, and coincides with it for the kinds of edits that
//! reparameterizations of NRAB operators induce (adding/removing/relabeling
//! whole subtrees). The heuristic explanation pipeline never computes this
//! distance — it uses the loose counting bounds of Section 5.4 — but the exact
//! MSR checker and several tests do.

use std::collections::BTreeMap;

use crate::bag::Bag;
use crate::value::Value;

/// Maximum number of children considered per bag node when building a tree
/// view; larger bags are truncated (with a synthetic `…` child standing in
/// for the remaining elements) to keep the cubic matching step tractable.
const MAX_BAG_CHILDREN: usize = 64;

/// An unordered, labeled tree view of a nested value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueTree {
    /// Node label (e.g. `⟨⟩`, `{{}}`, or `city: NY`).
    pub label: String,
    /// Child subtrees (order is irrelevant for the distance).
    pub children: Vec<ValueTree>,
}

impl ValueTree {
    /// Builds the tree view of a value.
    pub fn from_value(value: &Value) -> ValueTree {
        match value {
            Value::Tuple(t) => ValueTree {
                label: "⟨⟩".to_string(),
                children: t
                    .fields()
                    .iter()
                    .map(|(name, v)| match v {
                        Value::Tuple(_) | Value::Bag(_) => ValueTree {
                            label: name.as_str().to_string(),
                            children: vec![ValueTree::from_value(v)],
                        },
                        primitive => ValueTree {
                            label: format!("{name}: {primitive}"),
                            children: Vec::new(),
                        },
                    })
                    .collect(),
            },
            Value::Bag(bag) => ValueTree { label: "{{}}".to_string(), children: bag_children(bag) },
            primitive => ValueTree { label: primitive.to_string(), children: Vec::new() },
        }
    }

    /// Number of nodes in the tree (used as insertion/deletion cost).
    pub fn size(&self) -> u64 {
        1 + self.children.iter().map(ValueTree::size).sum::<u64>()
    }
}

fn bag_children(bag: &Bag) -> Vec<ValueTree> {
    let mut children = Vec::new();
    let mut truncated: u64 = 0;
    'outer: for (v, m) in bag.iter() {
        for _ in 0..*m {
            if children.len() >= MAX_BAG_CHILDREN {
                truncated += bag.total() - children.len() as u64;
                break 'outer;
            }
            children.push(ValueTree::from_value(v));
        }
    }
    if truncated > 0 {
        children.push(ValueTree { label: format!("…({truncated} more)"), children: Vec::new() });
    }
    children
}

/// The distance `d` between two nested values: constrained unordered tree
/// edit distance with unit relabeling cost and subtree-size
/// insertion/deletion costs.
pub fn tree_distance(a: &Value, b: &Value) -> u64 {
    let ta = ValueTree::from_value(a);
    let tb = ValueTree::from_value(b);
    tree_edit_distance(&ta, &tb)
}

/// Constrained unordered tree edit distance between two [`ValueTree`]s.
pub fn tree_edit_distance(a: &ValueTree, b: &ValueTree) -> u64 {
    let relabel = if a.label == b.label { 0 } else { 1 };
    relabel + forest_distance(&a.children, &b.children)
}

/// Minimum-cost matching between two child forests: each child of `a` is
/// either matched to a distinct child of `b` (cost = recursive distance) or
/// deleted (cost = its size); unmatched children of `b` are inserted
/// (cost = their size).
fn forest_distance(a: &[ValueTree], b: &[ValueTree]) -> u64 {
    if a.is_empty() {
        return b.iter().map(ValueTree::size).sum();
    }
    if b.is_empty() {
        return a.iter().map(ValueTree::size).sum();
    }
    let n = a.len();
    let m = b.len();
    let dim = n + m;
    const INF: u64 = u64::MAX / 4;
    // Square cost matrix: real node i matched to real node j, or to its own
    // "deletion slot" (i, m + i); insertion slots (n + j, j); the bottom-right
    // block is free (dummy-dummy pairings).
    let mut cost = vec![vec![INF; dim]; dim];
    for (i, ai) in a.iter().enumerate() {
        for (j, bj) in b.iter().enumerate() {
            cost[i][j] = tree_edit_distance(ai, bj);
        }
        cost[i][m + i] = ai.size();
    }
    for (j, bj) in b.iter().enumerate() {
        cost[n + j][j] = bj.size();
    }
    for row in cost.iter_mut().skip(n) {
        for cell in row.iter_mut().skip(m) {
            *cell = 0;
        }
    }
    hungarian_min_cost(&cost)
}

/// Hungarian algorithm (Jonker–Volgenant style O(n³) with potentials) for a
/// square cost matrix. Returns the minimum total assignment cost.
fn hungarian_min_cost(cost: &[Vec<u64>]) -> u64 {
    let n = cost.len();
    if n == 0 {
        return 0;
    }
    const INF: i128 = i128::MAX / 4;
    // 1-indexed potentials and matching, standard formulation.
    let mut u = vec![0i128; n + 1];
    let mut v = vec![0i128; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] as i128 - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut total: u64 = 0;
    for j in 1..=n {
        if p[j] != 0 {
            total += cost[p[j] - 1][j - 1];
        }
    }
    total
}

/// A cheap, coarse distance between two *relations* (top-level bags): the
/// number of top-level tuples that appear in exactly one of the two, weighted
/// by multiplicity. This is the `Δ⁺ + Δ⁻` count the side-effect bounds of
/// Section 5.4 reason about, and is usable on relations far too large for the
/// tree edit distance.
pub fn relation_symmetric_difference(a: &Bag, b: &Bag) -> u64 {
    // `Value` only carries interior mutability in its lazily cached
    // structural hash, which never changes its `Eq`/`Ord` identity.
    #[allow(clippy::mutable_key_type)]
    let mut keys: BTreeMap<&Value, (u64, u64)> = BTreeMap::new();
    for (v, m) in a.iter() {
        keys.entry(v).or_default().0 += m;
    }
    for (v, m) in b.iter() {
        keys.entry(v).or_default().1 += m;
    }
    keys.values().map(|(x, y)| x.abs_diff(*y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_tuple(city: &str, names: &[&str]) -> Value {
        Value::tuple([
            ("city", Value::str(city)),
            ("nList", Value::bag(names.iter().map(|n| Value::tuple([("name", Value::str(*n))])))),
        ])
    }

    #[test]
    fn identical_values_have_zero_distance() {
        let v = city_tuple("LA", &["Sue", "Peter"]);
        assert_eq!(tree_distance(&v, &v), 0);
    }

    #[test]
    fn leaf_relabel_costs_one() {
        let a = Value::str("LA");
        let b = Value::str("NY");
        assert_eq!(tree_distance(&a, &b), 1);
        assert_eq!(tree_distance(&a, &a), 0);
    }

    #[test]
    fn figure_2_t2_is_farther_from_t1_than_t3() {
        // T1: {{⟨LA, {Sue}⟩}}
        // T2 (SRσ):  {{⟨LA, {Sue}⟩, ⟨NY, {Sue}⟩, ⟨SF, {Peter}⟩}}   — a whole extra tuple vs T3
        // T3 (SRFσ): {{⟨LA, {Sue, Peter}⟩, ⟨NY, {Sue}⟩}}
        let t1 = Value::bag([city_tuple("LA", &["Sue"])]);
        let t2 = Value::bag([
            city_tuple("LA", &["Sue"]),
            city_tuple("NY", &["Sue"]),
            city_tuple("SF", &["Peter"]),
        ]);
        let t3 = Value::bag([city_tuple("LA", &["Sue", "Peter"]), city_tuple("NY", &["Sue"])]);
        let d12 = tree_distance(&t1, &t2);
        let d13 = tree_distance(&t1, &t3);
        assert!(d12 > d13, "d(T1,T2)={d12} should exceed d(T1,T3)={d13}");
    }

    #[test]
    fn insertion_cost_equals_subtree_size() {
        let empty = Value::bag([]);
        let one = Value::bag([city_tuple("NY", &["Sue"])]);
        // tuple node + city leaf + nList node + bag node + name leaf... count via node structure
        let tree = ValueTree::from_value(&city_tuple("NY", &["Sue"]));
        assert_eq!(tree_distance(&empty, &one), tree.size());
    }

    #[test]
    fn unordered_matching_ignores_element_order() {
        let a = Value::bag([city_tuple("LA", &["Sue"]), city_tuple("NY", &["Peter"])]);
        let b = Value::bag([city_tuple("NY", &["Peter"]), city_tuple("LA", &["Sue"])]);
        assert_eq!(tree_distance(&a, &b), 0);
    }

    #[test]
    fn hungarian_solves_small_assignment() {
        // Classic 3x3 example: optimal assignment cost 5 (1+2+2).
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        assert_eq!(hungarian_min_cost(&cost), 5);
        assert_eq!(hungarian_min_cost(&[]), 0);
    }

    #[test]
    fn relation_symmetric_difference_counts_changes() {
        let a = Bag::from_values([Value::int(1), Value::int(2)]);
        let b = Bag::from_values([Value::int(2), Value::int(3), Value::int(3)]);
        // 1 removed, two 3s added
        assert_eq!(relation_symmetric_difference(&a, &b), 3);
        assert_eq!(relation_symmetric_difference(&a, &a), 0);
    }

    #[test]
    fn large_bags_are_truncated_not_exploded() {
        let big = Value::bag((0..500).map(Value::int));
        let tree = ValueTree::from_value(&big);
        assert!(tree.children.len() <= MAX_BAG_CHILDREN + 1);
        // Distance computation still terminates quickly.
        let other = Value::bag((0..500).map(|i| Value::int(i + 1)));
        let _ = tree_distance(&big, &other);
    }
}
