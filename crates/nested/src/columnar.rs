//! Columnar representation of wide flat bags.
//!
//! Canonical bags are row-oriented (`Vec<(Value, u64)>`), which is the right
//! layout for nested values but wastes memory bandwidth on the scan-dominated
//! workloads of the paper's evaluation: selections, projections, and
//! aggregations over *wide flat* base relations (TPC-H `lineitem`, the
//! pre-joined `flatlineitem`, DBLP filler). A [`ColumnarBag`] stores such a
//! relation as one `Vec<Value>` per attribute (keyed by its interned
//! [`Sym`]) plus a multiplicity column, so a predicate over three attributes
//! of a 14-attribute relation touches three dense columns instead of
//! scanning every field of every row tuple.
//!
//! The representation is a **cache, not a second source of truth**: it is
//! built lazily from a canonical [`Bag`] (row `r` of every column is field
//! `r` of the bag's `r`-th entry, in canonical entry order), it is only
//! built when the bag is eligible (see [`ColumnarBag::from_flat_bag`] and
//! the [`MIN_COLUMNAR_ARITY`] / [`MIN_COLUMNAR_ROWS`] policy applied by
//! [`Bag::columnar`]), and every consumer must produce results byte-identical
//! to the row-oriented scan — the workspace equivalence tests pin this down
//! across all scenario families.
//!
//! [`with_columnar`] force-disables the columnar path on the current thread;
//! tests and benches use it to compare the two scan paths on the same code.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Arc;

use crate::bag::Bag;
use crate::sym::Sym;
use crate::tuple::Tuple;
use crate::value::Value;

/// Minimum tuple arity for a bag to count as *wide* (and thus worth
/// converting): narrow tuples are cheap to scan row-wise, and the per-column
/// bookkeeping would not pay for itself.
pub const MIN_COLUMNAR_ARITY: usize = 6;

/// Minimum number of distinct rows before conversion pays for itself.
pub const MIN_COLUMNAR_ROWS: usize = 32;

thread_local! {
    /// Thread-local columnar enable flag (default: enabled). See
    /// [`with_columnar`].
    static COLUMNAR_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether the columnar path is enabled on the current thread.
pub fn columnar_enabled() -> bool {
    COLUMNAR_ENABLED.with(Cell::get)
}

/// Runs `f` with the columnar scan path enabled or disabled on the current
/// thread, restoring the previous setting afterwards (also on panic).
///
/// Disabling makes [`Bag::columnar`] return `None`, which forces every scan
/// back onto the row-oriented path — the knob the equivalence tests and the
/// `columnar` bench group use to compare the two paths. The flag is
/// thread-local: it governs where the columnar *decision* is made (operator
/// application and tracing run on the calling thread; parallel workers only
/// execute chunks of an already-decided scan).
pub fn with_columnar<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore {
        previous: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.previous;
            COLUMNAR_ENABLED.with(|c| c.set(previous));
        }
    }
    let _restore = Restore { previous: COLUMNAR_ENABLED.with(|c| c.replace(enabled)) };
    f()
}

/// A dense column of one attribute, typed by the values it holds.
///
/// A column is *typed* (`Int`, `Real`, `Bool`, `Str`) only when **every** row
/// holds exactly that [`Value`] variant — no `⊥`, no `Int`/`Float` mixing —
/// so [`Column::value`] reconstructs the original `Value` bit for bit (the
/// equivalence contract of the whole columnar layer). Anything else, including
/// columns with nulls, is stored as `Mixed` boxed values and consumed through
/// the same scalar kernels as the row-oriented path.
///
/// Typed columns are what the vectorized kernels in `nrab-algebra::expr`
/// dispatch on: one match per chunk instead of one `Value` enum dispatch per
/// row, with comparisons and arithmetic running over unboxed `i64`/`f64`
/// slices.
#[derive(Debug, Clone)]
pub enum Column {
    /// Every row is a `Value::Int`.
    Int(Vec<i64>),
    /// Every row is a `Value::Float`.
    Real(Vec<f64>),
    /// Every row is a `Value::Bool`.
    Bool(Vec<bool>),
    /// Every row is a `Value::Str`.
    Str(Vec<Arc<str>>),
    /// Heterogeneous rows (or rows containing `⊥`), kept as boxed values.
    Mixed(Vec<Value>),
}

/// A borrowed view of a contiguous row range of a [`Column`], preserving its
/// typed representation. This is what per-chunk kernels work on.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Slice of an `Int` column.
    Int(&'a [i64]),
    /// Slice of a `Real` column.
    Real(&'a [f64]),
    /// Slice of a `Bool` column.
    Bool(&'a [bool]),
    /// Slice of a `Str` column.
    Str(&'a [Arc<str>]),
    /// Slice of a `Mixed` column.
    Mixed(&'a [Value]),
}

impl Column {
    /// Classifies a vector of scalar values into the narrowest typed column
    /// that reconstructs every value exactly. Mixed-variant vectors (including
    /// any `⊥` or `Int`/`Float` mixing) stay boxed.
    pub fn from_values(values: Vec<Value>) -> Column {
        fn all<F: Fn(&Value) -> bool>(values: &[Value], f: F) -> bool {
            values.iter().all(f)
        }
        match values.first() {
            Some(Value::Int(_)) if all(&values, |v| matches!(v, Value::Int(_))) => Column::Int(
                values.into_iter().map(|v| v.as_int().expect("all-int column")).collect(),
            ),
            Some(Value::Float(_)) if all(&values, |v| matches!(v, Value::Float(_))) => {
                Column::Real(
                    values
                        .into_iter()
                        .map(|v| match v {
                            Value::Float(f) => f,
                            _ => unreachable!("all-float column"),
                        })
                        .collect(),
                )
            }
            Some(Value::Bool(_)) if all(&values, |v| matches!(v, Value::Bool(_))) => Column::Bool(
                values.into_iter().map(|v| v.as_bool().expect("all-bool column")).collect(),
            ),
            Some(Value::Str(_)) if all(&values, |v| matches!(v, Value::Str(_))) => Column::Str(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("all-str column"),
                    })
                    .collect(),
            ),
            _ => Column::Mixed(values),
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Real(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs row `r` as a [`Value`], identical to the field value the
    /// column was built from (an `Arc` bump for strings, a copy otherwise).
    pub fn value(&self, r: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[r]),
            Column::Real(v) => Value::Float(v[r]),
            Column::Bool(v) => Value::Bool(v[r]),
            Column::Str(v) => Value::Str(v[r].clone()),
            Column::Mixed(v) => v[r].clone(),
        }
    }

    /// A typed view of the rows in `range`.
    pub fn slice(&self, range: Range<usize>) -> ColumnSlice<'_> {
        match self {
            Column::Int(v) => ColumnSlice::Int(&v[range]),
            Column::Real(v) => ColumnSlice::Real(&v[range]),
            Column::Bool(v) => ColumnSlice::Bool(&v[range]),
            Column::Str(v) => ColumnSlice::Str(&v[range]),
            Column::Mixed(v) => ColumnSlice::Mixed(&v[range]),
        }
    }

    /// Consumes the column, reconstructing the boxed values of every row.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            Column::Int(v) => v.into_iter().map(Value::Int).collect(),
            Column::Real(v) => v.into_iter().map(Value::Float).collect(),
            Column::Bool(v) => v.into_iter().map(Value::Bool).collect(),
            Column::Str(v) => v.into_iter().map(Value::Str).collect(),
            Column::Mixed(v) => v,
        }
    }
}

impl ColumnSlice<'_> {
    /// Number of rows in the slice.
    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::Int(v) => v.len(),
            ColumnSlice::Real(v) => v.len(),
            ColumnSlice::Bool(v) => v.len(),
            ColumnSlice::Str(v) => v.len(),
            ColumnSlice::Mixed(v) => v.len(),
        }
    }

    /// Whether the slice has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs row `i` (relative to the slice) as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnSlice::Int(v) => Value::Int(v[i]),
            ColumnSlice::Real(v) => Value::Float(v[i]),
            ColumnSlice::Bool(v) => Value::Bool(v[i]),
            ColumnSlice::Str(v) => Value::Str(v[i].clone()),
            ColumnSlice::Mixed(v) => v[i].clone(),
        }
    }

    /// Copies the slice into an owned [`Column`] of the same type.
    pub fn to_column(&self) -> Column {
        match self {
            ColumnSlice::Int(v) => Column::Int(v.to_vec()),
            ColumnSlice::Real(v) => Column::Real(v.to_vec()),
            ColumnSlice::Bool(v) => Column::Bool(v.to_vec()),
            ColumnSlice::Str(v) => Column::Str(v.to_vec()),
            ColumnSlice::Mixed(v) => Column::Mixed(v.to_vec()),
        }
    }
}

/// A flat bag decomposed into per-attribute columns.
///
/// Row `r` corresponds to the bag's `r`-th canonical entry: column `c`'s row
/// `r` is the value of attribute `syms[c]` and `mults[r]` its multiplicity.
/// All values are scalars (null, bool, int, float, or string) and every row
/// has the same attributes in the same order, so the original tuples can be
/// reconstructed exactly (see [`ColumnarBag::row_tuple`]). Homogeneous
/// columns store their data unboxed (see [`Column`]).
#[derive(Debug)]
pub struct ColumnarBag {
    /// Attribute symbols, in the (shared) field order of the row tuples.
    syms: Vec<Sym>,
    /// One dense typed column per attribute, in `syms` order.
    columns: Vec<Column>,
    /// Per-row multiplicities, mirroring the bag entries.
    mults: Vec<u64>,
}

impl ColumnarBag {
    /// Decomposes a flat bag into columns, or `None` if the bag is not
    /// *uniformly flat*: every entry must be a tuple, every tuple must list
    /// the same attributes in the same order, and every field value must be
    /// a scalar (no nested tuples or bags). Empty bags and bags of
    /// zero-arity tuples yield `None` (there is nothing to columnarize).
    ///
    /// This checks only *shape*; the wideness policy
    /// ([`MIN_COLUMNAR_ARITY`], [`MIN_COLUMNAR_ROWS`]) lives in
    /// [`Bag::columnar`], so tests can columnarize small bags directly.
    pub fn from_flat_bag(bag: &Bag) -> Option<ColumnarBag> {
        let (first, _) = bag.iter().next()?;
        let syms: Vec<Sym> = first.as_tuple()?.fields().iter().map(|(n, _)| *n).collect();
        if syms.is_empty() {
            return None;
        }
        let mut columns: Vec<Vec<Value>> =
            syms.iter().map(|_| Vec::with_capacity(bag.distinct())).collect();
        let mut mults = Vec::with_capacity(bag.distinct());
        for (value, mult) in bag.iter() {
            let fields = value.as_tuple()?.fields();
            if fields.len() != syms.len() {
                return None;
            }
            for (c, (sym, field)) in fields.iter().enumerate() {
                if *sym != syms[c] || !field.is_scalar() {
                    return None;
                }
                columns[c].push(field.clone());
            }
            mults.push(*mult);
        }
        let columns = columns.into_iter().map(Column::from_values).collect();
        Some(ColumnarBag { syms, columns, mults })
    }

    /// Number of rows (distinct bag entries).
    pub fn rows(&self) -> usize {
        self.mults.len()
    }

    /// Number of columns (the shared tuple arity).
    pub fn arity(&self) -> usize {
        self.syms.len()
    }

    /// The attribute symbols in column order.
    pub fn syms(&self) -> &[Sym] {
        &self.syms
    }

    /// The per-row multiplicities.
    pub fn mults(&self) -> &[u64] {
        &self.mults
    }

    /// The typed column of attribute `name`, if present.
    pub fn column(&self, name: Sym) -> Option<&Column> {
        self.syms.iter().position(|s| *s == name).map(|c| &self.columns[c])
    }

    /// Reconstructs row `r` as a tuple, field-for-field identical to the bag
    /// entry the row was built from.
    pub fn row_tuple(&self, r: usize) -> Tuple {
        Tuple::new(self.syms.iter().zip(&self.columns).map(|(sym, col)| (*sym, col.value(r))))
    }
}

/// Whether a bag passes the default wideness policy (enough rows, first row
/// a wide-enough tuple) that makes columnar conversion worth attempting.
/// Exposed for tests and benches.
pub fn is_wide_flat(bag: &Bag) -> bool {
    bag.distinct() >= MIN_COLUMNAR_ROWS
        && bag
            .iter()
            .next()
            .and_then(|(v, _)| v.as_tuple())
            .map(|t| t.arity() >= MIN_COLUMNAR_ARITY)
            .unwrap_or(false)
}

/// Applies the wideness policy and builds (or rejects) the columnar form of
/// a bag. Used by [`Bag::columnar`] to fill its cache.
pub(crate) fn build_columnar(bag: &Bag) -> Option<Arc<ColumnarBag>> {
    if !is_wide_flat(bag) {
        return None;
    }
    ColumnarBag::from_flat_bag(bag).map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_row(i: i64, arity: usize) -> Value {
        Value::tuple((0..arity).map(|c| {
            let name = format!("a{c}");
            let value = match c % 3 {
                0 => Value::int(i * 10 + c as i64),
                1 => Value::str(format!("s{}-{}", i, c)),
                _ => Value::float(i as f64 + c as f64 / 10.0),
            };
            (name, value)
        }))
    }

    fn wide_bag(rows: usize, arity: usize) -> Bag {
        Bag::from_values((0..rows as i64).map(|i| wide_row(i, arity)))
    }

    #[test]
    fn flat_wide_bag_is_columnar() {
        let bag = wide_bag(MIN_COLUMNAR_ROWS, MIN_COLUMNAR_ARITY);
        let cols = bag.columnar().expect("wide flat bag must columnarize");
        assert_eq!(cols.rows(), MIN_COLUMNAR_ROWS);
        assert_eq!(cols.arity(), MIN_COLUMNAR_ARITY);
        assert_eq!(cols.mults().len(), cols.rows());
        // Rows reconstruct exactly, in canonical entry order.
        for (r, (value, mult)) in bag.iter().enumerate() {
            assert_eq!(&Value::from_tuple(cols.row_tuple(r)), value);
            assert_eq!(cols.mults()[r], *mult);
        }
        // Columns read back the per-row field values.
        let a0 = cols.column(Sym::intern("a0")).unwrap();
        for (r, (value, _)) in bag.iter().enumerate() {
            assert_eq!(&a0.value(r), value.as_tuple().unwrap().get("a0").unwrap());
        }
        assert!(cols.column(Sym::intern("missing")).is_none());
    }

    #[test]
    fn homogeneous_columns_are_typed_and_mixed_columns_are_boxed() {
        let bag = wide_bag(MIN_COLUMNAR_ROWS, MIN_COLUMNAR_ARITY);
        let cols = bag.columnar().unwrap();
        // `wide_row` cycles int / str / float per column index.
        assert!(matches!(cols.column(Sym::intern("a0")), Some(Column::Int(_))));
        assert!(matches!(cols.column(Sym::intern("a1")), Some(Column::Str(_))));
        assert!(matches!(cols.column(Sym::intern("a2")), Some(Column::Real(_))));

        // A column holding a ⊥ (or mixed variants) must stay boxed so
        // reconstruction is exact.
        let mixed = Column::from_values(vec![Value::int(1), Value::Null, Value::int(3)]);
        assert!(matches!(mixed, Column::Mixed(_)));
        let int_and_float = Column::from_values(vec![Value::int(1), Value::float(2.0)]);
        assert!(
            matches!(int_and_float, Column::Mixed(_)),
            "Int/Float mixing must not be widened: Value::Int(2) and Value::Float(2.0) are \
             distinct representations even though they compare equal"
        );
        let bools = Column::from_values(vec![Value::bool(true), Value::bool(false)]);
        assert!(matches!(bools, Column::Bool(_)));
        assert_eq!(bools.len(), 2);
        assert!(!bools.is_empty());
        assert_eq!(bools.value(1), Value::bool(false));
    }

    #[test]
    fn column_slices_preserve_type_and_values() {
        let col = Column::from_values((0..10).map(Value::int).collect());
        let slice = col.slice(3..7);
        assert_eq!(slice.len(), 4);
        assert!(!slice.is_empty());
        assert!(matches!(slice, ColumnSlice::Int(_)));
        assert_eq!(slice.value(0), Value::int(3));
        let owned = slice.to_column();
        assert!(matches!(owned, Column::Int(_)));
        assert_eq!(owned.into_values(), (3..7).map(Value::int).collect::<Vec<_>>());
        // Round trip: values in, values out.
        let values: Vec<Value> = vec![Value::str("a"), Value::str("b")];
        assert_eq!(Column::from_values(values.clone()).into_values(), values);
    }

    #[test]
    fn conversion_is_cached_per_bag() {
        let bag = wide_bag(MIN_COLUMNAR_ROWS, MIN_COLUMNAR_ARITY);
        let a = bag.columnar().unwrap();
        let b = bag.columnar().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "conversion must happen once per bag");
    }

    #[test]
    fn narrow_small_or_nested_bags_are_not_columnar() {
        // Too few rows.
        assert!(wide_bag(MIN_COLUMNAR_ROWS - 1, MIN_COLUMNAR_ARITY).columnar().is_none());
        // Too narrow.
        assert!(wide_bag(MIN_COLUMNAR_ROWS, MIN_COLUMNAR_ARITY - 1).columnar().is_none());
        // Nested field value.
        let nested = Bag::from_values((0..MIN_COLUMNAR_ROWS as i64).map(|i| {
            let mut fields: Vec<(String, Value)> =
                (0..MIN_COLUMNAR_ARITY - 1).map(|c| (format!("a{c}"), Value::int(i))).collect();
            fields.push(("nested".into(), Value::bag([Value::int(i)])));
            Value::tuple(fields)
        }));
        assert!(!is_wide_flat(&nested) || nested.columnar().is_none());
        assert!(ColumnarBag::from_flat_bag(&nested).is_none());
        // Non-tuple entries.
        let scalars = Bag::from_values((0..MIN_COLUMNAR_ROWS as i64).map(Value::int));
        assert!(scalars.columnar().is_none());
        assert!(ColumnarBag::from_flat_bag(&scalars).is_none());
        // Empty bag.
        assert!(ColumnarBag::from_flat_bag(&Bag::new()).is_none());
    }

    #[test]
    fn from_flat_bag_ignores_the_wideness_policy() {
        let small = wide_bag(2, 3);
        assert!(small.columnar().is_none());
        let cols = ColumnarBag::from_flat_bag(&small).expect("shape is flat");
        assert_eq!(cols.rows(), 2);
        assert_eq!(cols.arity(), 3);
    }

    #[test]
    fn with_columnar_toggles_and_restores() {
        let bag = wide_bag(MIN_COLUMNAR_ROWS, MIN_COLUMNAR_ARITY);
        assert!(columnar_enabled());
        with_columnar(false, || {
            assert!(!columnar_enabled());
            assert!(bag.columnar().is_none(), "disabled thread must take the row path");
            with_columnar(true, || assert!(bag.columnar().is_some()));
            assert!(!columnar_enabled());
        });
        assert!(columnar_enabled());
        assert!(bag.columnar().is_some());
    }

    #[test]
    fn mutation_invalidates_the_cache() {
        let mut bag = wide_bag(MIN_COLUMNAR_ROWS, MIN_COLUMNAR_ARITY);
        let before = bag.columnar().unwrap();
        assert_eq!(before.rows(), MIN_COLUMNAR_ROWS);
        bag.insert(wide_row(1_000, MIN_COLUMNAR_ARITY), 2);
        let after = bag.columnar().unwrap();
        assert_eq!(after.rows(), MIN_COLUMNAR_ROWS + 1);
    }
}
