//! Interned attribute symbols.
//!
//! Attribute names occur everywhere in nested data — every tuple field, every
//! path segment, every tuple-type attribute — and the same few dozen names are
//! repeated across millions of tuples in the benchmark datasets. A [`Sym`] is
//! a handle into a process-wide, thread-safe interner: the first time a name
//! is seen it is copied into the interner (and leaked, so the backing `str`
//! lives for the rest of the process); every later interning of the same name
//! returns the same handle.
//!
//! Consequences:
//!
//! * **Equality is an integer compare** (`u32` handle comparison), not a
//!   string compare — the hot operation in tuple field lookup.
//! * **Cloning is a `Copy`** — no per-tuple name allocations in `project`,
//!   `rename`, flattening, or data generation.
//! * **Ordering and hashing delegate to the underlying string**, so the
//!   canonical (name-sorted) tuple order and name-based tuple hashes are
//!   bit-identical to the previous `String` representation. Determinism does
//!   not depend on interning order.
//!
//! The interner only ever grows; its memory is bounded by the number of
//! *distinct* attribute names, which is small in practice.
//!
//! The lookup table is *sharded* (16 independent mutexes, keyed by a hash of
//! the name) so that concurrent tracing threads interning operator parameters
//! do not serialize on a single lock; symbol ids come from one atomic counter
//! and the [`MAX_INTERNED_SYMBOLS`] cap honored by [`Sym::try_intern`] stays
//! global and exact (a single atomic reservation guards every new name,
//! whichever shard it lands in).

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned attribute name: a `u32` handle plus a pointer to the interned
/// string (so resolving a symbol never takes the interner lock).
#[derive(Clone, Copy)]
pub struct Sym {
    id: u32,
    text: &'static str,
}

/// Number of independent lock shards. A small power of two: contention on
/// the interner is bursty (operator parameters at trace time), and 16 locks
/// already make collisions between tracing threads unlikely.
const SHARD_COUNT: usize = 16;

struct Interner {
    shards: [Mutex<HashMap<&'static str, Sym>>; SHARD_COUNT],
    /// Distinct symbols interned so far, across all shards. New names reserve
    /// a slot here *before* allocating, which is what keeps the
    /// [`MAX_INTERNED_SYMBOLS`] cap exact under concurrency.
    count: AtomicUsize,
    /// Next symbol id (ids are unique but not contiguous per shard).
    next_id: AtomicU32,
}

static INTERNER: OnceLock<Interner> = OnceLock::new();

fn interner() -> &'static Interner {
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        count: AtomicUsize::new(0),
        next_id: AtomicU32::new(0),
    })
}

/// The shard a name lives in: deterministic within the process (which is all
/// sharding needs — symbol identity never depends on the shard index).
fn shard_index(name: &str) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    (hasher.finish() as usize) % SHARD_COUNT
}

/// Hard ceiling on distinct interned symbols honored by [`Sym::try_intern`].
///
/// Interned strings are leaked for the lifetime of the process, so code that
/// interns *untrusted* names (e.g. the service wire codecs decoding client
/// JSON) must go through [`Sym::try_intern`], which refuses new names beyond
/// this bound instead of letting a client grow the interner without limit.
/// 2^20 distinct attribute names is far beyond any legitimate schema while
/// capping the worst-case leak at tens of megabytes.
pub const MAX_INTERNED_SYMBOLS: usize = 1 << 20;

impl Sym {
    /// Interns `name`, returning its symbol. Idempotent: the same string
    /// always yields the same handle. Use [`Sym::try_intern`] instead when
    /// the name comes from untrusted input.
    pub fn intern(name: &str) -> Sym {
        let interner = interner();
        let mut shard =
            interner.shards[shard_index(name)].lock().expect("symbol interner poisoned");
        if let Some(&sym) = shard.get(name) {
            return sym;
        }
        interner.count.fetch_add(1, Ordering::SeqCst);
        let sym = Sym::allocate(interner, name);
        shard.insert(sym.text, sym);
        sym
    }

    /// Leaks `name` and assigns a fresh id. Caller holds the shard lock for
    /// `name` (so a name is never allocated twice) and has already accounted
    /// for the new symbol in `count`.
    fn allocate(interner: &Interner, name: &str) -> Sym {
        let text: &'static str = Box::leak(name.to_string().into_boxed_str());
        let id = interner.next_id.fetch_add(1, Ordering::SeqCst);
        assert!(id != u32::MAX, "symbol interner overflow");
        Sym { id, text }
    }

    /// Interns `name` unless doing so would push the number of distinct
    /// symbols past [`MAX_INTERNED_SYMBOLS`]; already-interned names always
    /// succeed. This is the entry point for untrusted (wire) input, whose
    /// attribute names must not leak unbounded interner memory.
    pub fn try_intern(name: &str) -> Option<Sym> {
        let interner = interner();
        let mut shard =
            interner.shards[shard_index(name)].lock().expect("symbol interner poisoned");
        if let Some(&sym) = shard.get(name) {
            return Some(sym);
        }
        // Reserve a slot under the global cap before allocating. The atomic
        // reservation keeps the cap exact even when other shards are
        // admitting names concurrently.
        interner
            .count
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |count| {
                (count < MAX_INTERNED_SYMBOLS).then_some(count + 1)
            })
            .ok()?;
        let sym = Sym::allocate(interner, name);
        shard.insert(sym.text, sym);
        Some(sym)
    }

    /// The interned string. Free: no lock, no allocation.
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// The `u32` interner handle (stable within a process, not across runs).
    pub fn id(self) -> u32 {
        self.id
    }

    /// Number of distinct symbols interned so far (diagnostics / benches).
    pub fn interned_count() -> usize {
        interner().count.load(Ordering::SeqCst)
    }
}

impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    /// String order (with an integer fast path for equal symbols), preserving
    /// the canonical orders of the previous `String` representation.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

impl Hash for Sym {
    /// Hashes the interned string so tuple hashes stay deterministic across
    /// runs regardless of interning order.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.text.hash(state);
    }
}

impl Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        self.text
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.text
    }
}

impl std::borrow::Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        self.text
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.text)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Sym {
        *s
    }
}

impl From<Sym> for String {
    fn from(s: Sym) -> String {
        s.text.to_string()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.text == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.text
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.text
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::intern("city");
        let b = Sym::intern("city");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Sym::intern("sym-test-a");
        let b = Sym::intern("sym-test-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn order_and_hash_follow_the_string() {
        // Intern in reverse lexicographic order: ordering must still be
        // lexicographic, not insertion order.
        let z = Sym::intern("sym-test-z");
        let m = Sym::intern("sym-test-m");
        assert!(m < z);
        assert_eq!(hash(&z), hash(&"sym-test-z".to_string()));
        let mut v = [z, m, Sym::intern("sym-test-a2")];
        v.sort();
        assert_eq!(
            v.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            vec!["sym-test-a2", "sym-test-m", "sym-test-z"]
        );
    }

    #[test]
    fn string_comparisons_work_both_ways() {
        let s = Sym::intern("name");
        assert_eq!(s, "name");
        assert_eq!("name", s);
        assert_eq!(s, "name".to_string());
        assert_eq!(&s[..2], "na");
        assert_eq!(s.to_string(), "name");
        assert_eq!(String::from(s), "name");
    }

    #[test]
    fn symbols_are_shared_across_threads() {
        let handles: Vec<_> =
            (0..4).map(|_| std::thread::spawn(|| Sym::intern("sym-test-threaded"))).collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn try_intern_accepts_known_and_new_names_under_the_cap() {
        let known = Sym::intern("sym-test-try");
        assert_eq!(Sym::try_intern("sym-test-try"), Some(known));
        let fresh = Sym::try_intern("sym-test-try-fresh").unwrap();
        assert_eq!(fresh.as_str(), "sym-test-try-fresh");
        assert!(Sym::interned_count() <= MAX_INTERNED_SYMBOLS);
    }

    #[test]
    fn concurrent_interning_of_distinct_names_stays_consistent() {
        // Hammer the sharded interner from several threads with overlapping
        // name sets: every name must resolve to exactly one id, and the
        // count must grow by exactly the number of distinct new names.
        let before = Sym::interned_count();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| {
                            // Each name is interned by two of the four threads.
                            let name = format!("sym-shard-test-{}-{i}", (t / 2) as u32);
                            (name.clone(), Sym::intern(&name))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        for handle in handles {
            for (name, sym) in handle.join().unwrap() {
                assert_eq!(sym.as_str(), name);
                let id = seen.entry(name.clone()).or_insert_with(|| sym.id());
                assert_eq!(*id, sym.id(), "id of {name} must be stable across threads");
            }
        }
        assert_eq!(seen.len(), 128);
        // Other tests may intern concurrently, so only a lower bound is exact.
        assert!(Sym::interned_count() >= before + 128);
    }

    #[test]
    fn interned_count_grows_monotonically() {
        let before = Sym::interned_count();
        Sym::intern("sym-test-count-probe");
        let after = Sym::interned_count();
        assert!(after >= before);
        Sym::intern("sym-test-count-probe");
        assert_eq!(Sym::interned_count(), after);
    }
}
