//! Nested relation instances (Definition 2).
//!
//! A [`Value`] is either the special null value `⊥` (which inhabits every
//! type), a primitive, a tuple ([`Tuple`]) or a nested relation ([`Bag`]).
//! Values have a total order (used to canonicalize bags and to make results
//! deterministic), structural equality, and hashing, so they can be used as
//! grouping keys throughout the algebra and provenance crates.
//!
//! Compound values (strings, tuples, bags) are stored behind [`Arc`]s, so
//! `Value::clone` is **O(1)** and values share subtrees structurally: copying
//! a traced tuple, a projected field, or a whole base relation bumps reference
//! counts instead of deep-copying trees. In-place mutation goes through
//! [`Arc::make_mut`] (copy-on-write): shared subtrees are only materialized
//! when actually written to.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::bag::{Bag, BagBuilder};
use crate::error::{DataError, DataResult};
use crate::path::AttrPath;
use crate::tuple::Tuple;
use crate::types::{NestedType, PrimitiveType, TupleType};

/// A nested value.
#[derive(Debug, Clone)]
pub enum Value {
    /// The special null value `⊥`, valid for any nested type.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string (ISO dates are represented as strings and compare lexicographically).
    Str(Arc<str>),
    /// A tuple value.
    Tuple(Arc<Tuple>),
    /// A nested relation (bag of values, normally tuples).
    Bag(Arc<Bag>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for float values.
    pub fn float(f: f64) -> Value {
        Value::Float(f)
    }

    /// Convenience constructor for boolean values.
    pub fn bool(b: bool) -> Value {
        Value::Bool(b)
    }

    /// An empty nested relation `{{}}`.
    pub fn empty_bag() -> Value {
        Value::Bag(Arc::new(Bag::new()))
    }

    /// Wraps an owned tuple as a value.
    pub fn from_tuple(t: Tuple) -> Value {
        Value::Tuple(Arc::new(t))
    }

    /// Wraps an owned bag as a value.
    pub fn from_bag(b: Bag) -> Value {
        Value::Bag(Arc::new(b))
    }

    /// Builds a tuple value from `(name, value)` pairs.
    pub fn tuple<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<crate::sym::Sym>,
    {
        Value::from_tuple(Tuple::new(fields))
    }

    /// Builds a bag value from an iterator of element values.
    pub fn bag<I>(values: I) -> Value
    where
        I: IntoIterator<Item = Value>,
    {
        Value::from_bag(Bag::from_values(values))
    }

    /// Whether this value is `⊥`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value is a scalar (null, bool, int, float, or string) —
    /// i.e. neither a tuple nor a nested relation. Scalar-only tuples are
    /// what the columnar layout ([`crate::columnar`]) decomposes.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Value::Tuple(_) | Value::Bag(_))
    }

    /// The contained tuple, if this is a tuple value.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Mutable access to the contained tuple, if this is a tuple value.
    ///
    /// Copy-on-write: if the tuple is shared, it is cloned one level deep
    /// first (`Arc::make_mut`); nested values inside it stay shared.
    pub fn as_tuple_mut(&mut self) -> Option<&mut Tuple> {
        match self {
            Value::Tuple(t) => Some(Arc::make_mut(t)),
            _ => None,
        }
    }

    /// The contained bag, if this is a bag value.
    pub fn as_bag(&self) -> Option<&Bag> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// The contained string, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained integer, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The contained float, widening integers, if numeric.
    ///
    /// This `Int → f64` widening (`i as f64`, lossy above 2⁵³) is the
    /// numeric-comparison contract of the whole workspace: scalar
    /// comparisons, the typed columnar kernels, and the hash-join key
    /// canonicalization all coerce through exactly this function, so mixed
    /// `Int`/`Float` data compares identically on every physical path.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The contained boolean, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Expects a tuple value, erroring otherwise.
    pub fn expect_tuple(&self) -> DataResult<&Tuple> {
        self.as_tuple().ok_or_else(|| DataError::TypeMismatch {
            expected: "tuple".into(),
            found: self.kind().into(),
        })
    }

    /// Expects a bag value, erroring otherwise.
    pub fn expect_bag(&self) -> DataResult<&Bag> {
        self.as_bag().ok_or_else(|| DataError::TypeMismatch {
            expected: "bag".into(),
            found: self.kind().into(),
        })
    }

    /// A short description of the value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Tuple(_) => "tuple",
            Value::Bag(_) => "bag",
        }
    }

    /// Infers the nested type of this value, if determinable.
    ///
    /// `⊥` has no intrinsic type (it conforms to every type) and yields
    /// `None`; bags infer their element type from the first non-null element.
    pub fn infer_type(&self) -> Option<NestedType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(NestedType::Prim(PrimitiveType::Bool)),
            Value::Int(_) => Some(NestedType::Prim(PrimitiveType::Int)),
            Value::Float(_) => Some(NestedType::Prim(PrimitiveType::Float)),
            Value::Str(_) => Some(NestedType::Prim(PrimitiveType::Str)),
            Value::Tuple(t) => {
                let mut fields = Vec::with_capacity(t.arity());
                for (name, value) in t.fields() {
                    let ty = value.infer_type().unwrap_or(NestedType::Prim(PrimitiveType::Str));
                    fields.push((*name, ty));
                }
                Some(NestedType::Tuple(TupleType::from_fields(fields)))
            }
            Value::Bag(b) => {
                let element = b
                    .iter()
                    .filter_map(|(v, _)| v.infer_type())
                    .find_map(|t| match t {
                        NestedType::Tuple(t) => Some(t),
                        _ => None,
                    })
                    .unwrap_or_else(TupleType::empty);
                Some(NestedType::Relation(element))
            }
        }
    }

    /// Whether the value conforms to `ty`. `⊥` conforms to every type;
    /// the check recurses into tuples and bags and ignores attribute order.
    pub fn conforms_to(&self, ty: &NestedType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Bool(_), NestedType::Prim(PrimitiveType::Bool)) => true,
            (Value::Int(_), NestedType::Prim(PrimitiveType::Int)) => true,
            (Value::Float(_), NestedType::Prim(PrimitiveType::Float)) => true,
            // Integers may appear where floats are expected (e.g. prices).
            (Value::Int(_), NestedType::Prim(PrimitiveType::Float)) => true,
            (Value::Str(_), NestedType::Prim(PrimitiveType::Str)) => true,
            (Value::Tuple(t), NestedType::Tuple(tt)) => t.conforms_to(tt),
            (Value::Bag(b), NestedType::Relation(tt)) => b.iter().all(|(v, _)| {
                v.is_null() || v.as_tuple().map(|t| t.conforms_to(tt)).unwrap_or(false)
            }),
            _ => false,
        }
    }

    /// Navigates an attribute path, stepping through tuples.
    ///
    /// When the path steps into a bag, the collected values of the remaining
    /// path over all bag elements are returned as a new bag (this mirrors how
    /// source-attribute constraints like `address2.city = NY` are interpreted:
    /// "the cities appearing inside `address2`").
    pub fn get_path(&self, path: &AttrPath) -> DataResult<Value> {
        if path.is_empty() {
            return Ok(self.clone());
        }
        match self {
            Value::Null => Ok(Value::Null),
            Value::Tuple(t) => {
                let head = path.head().expect("non-empty path");
                let inner = t.get_required(head)?;
                inner.get_path(&path.tail())
            }
            Value::Bag(b) => {
                let mut builder = BagBuilder::with_capacity(b.distinct());
                for (element, mult) in b.iter() {
                    let v = element.get_path(path)?;
                    builder.add(v, *mult);
                }
                Ok(Value::from_bag(builder.finish()))
            }
            other => Err(DataError::PathMismatch {
                path: path.to_string(),
                found: other.kind().to_string(),
            }),
        }
    }

    /// Whether this value, or any value nested inside it along `path`,
    /// equals `needle`. Bags along the way are searched existentially.
    pub fn contains_at_path(&self, path: &AttrPath, needle: &Value) -> bool {
        if path.is_empty() {
            return self.contains_value(needle);
        }
        match self {
            Value::Null => false,
            Value::Tuple(t) => match t.get(path.head().expect("non-empty path")) {
                Some(inner) => inner.contains_at_path(&path.tail(), needle),
                None => false,
            },
            Value::Bag(b) => b.iter().any(|(v, _)| v.contains_at_path(path, needle)),
            _ => false,
        }
    }

    fn contains_value(&self, needle: &Value) -> bool {
        if self == needle {
            return true;
        }
        match self {
            Value::Bag(b) => b.iter().any(|(v, _)| v == needle),
            _ => false,
        }
    }

    /// Total number of nodes in the value tree; used as a size measure for
    /// tree-edit-distance costs.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Tuple(t) => 1 + t.fields().iter().map(|(_, v)| v.node_count()).sum::<usize>(),
            Value::Bag(b) => {
                1 + b.iter().map(|(v, m)| v.node_count() * (*m as usize)).sum::<usize>()
            }
            _ => 1,
        }
    }

    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Tuple(_) => 5,
            Value::Bag(_) => 6,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Shared subtrees are identical without looking inside; the deep
            // comparison only runs for distinct allocations.
            (Value::Tuple(a), Value::Tuple(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Value::Bag(a), Value::Bag(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            // Numeric cross-variant comparisons keep Int and Float comparable
            // by value so that e.g. grouping on a mixed column is stable.
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => a.variant_rank().cmp(&b.variant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash through the same numeric representation when
            // the float is integral, so that `Int(2) == Float(2.0)` implies
            // equal hashes (required by the Eq/Hash contract given the
            // cross-variant ordering above).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Tuple(t) => {
                5u8.hash(state);
                t.hash(state);
            }
            Value::Bag(b) => {
                6u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Tuple(t) => write!(f, "{t}"),
            Value::Bag(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<Tuple> for Value {
    fn from(t: Tuple) -> Self {
        Value::from_tuple(t)
    }
}

impl From<Bag> for Value {
    fn from(b: Bag) -> Self {
        Value::from_bag(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sue() -> Value {
        Value::tuple([
            ("name", Value::str("Sue")),
            (
                "address2",
                Value::bag([
                    Value::tuple([("city", Value::str("LA")), ("year", Value::int(2019))]),
                    Value::tuple([("city", Value::str("NY")), ("year", Value::int(2018))]),
                ]),
            ),
        ])
    }

    #[test]
    fn constructors_and_accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::int(3).as_float(), Some(3.0));
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert!(Value::empty_bag().as_bag().unwrap().is_empty());
        assert!(Value::int(1).expect_tuple().is_err());
        assert!(sue().expect_tuple().is_ok());
    }

    #[test]
    fn clone_is_shallow_and_shared() {
        let v = sue();
        let w = v.clone();
        match (&v, &w) {
            (Value::Tuple(a), Value::Tuple(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected tuples"),
        }
        assert_eq!(v, w);
    }

    #[test]
    fn copy_on_write_mutation_leaves_the_original_alone() {
        let v = sue();
        let mut w = v.clone();
        let t = w.as_tuple_mut().unwrap();
        *t = t.with_field("name", Value::str("Ann"));
        assert_eq!(v.as_tuple().unwrap().get("name"), Some(&Value::str("Sue")));
        assert_eq!(w.as_tuple().unwrap().get("name"), Some(&Value::str("Ann")));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut values = [
            Value::str("b"),
            Value::Null,
            Value::int(5),
            Value::float(1.5),
            Value::bool(true),
            Value::str("a"),
        ];
        values.sort();
        assert_eq!(values[0], Value::Null);
        assert_eq!(values[1], Value::bool(true));
        // int 1.5 float ordering across variants is numeric
        assert!(Value::int(1) < Value::float(1.5));
        assert!(Value::float(4.5) < Value::int(5));
        assert_eq!(Value::int(2), Value::Float(2.0));
    }

    #[test]
    fn equality_and_hash_consistent_for_numeric() {
        use std::collections::hash_map::DefaultHasher;
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(Value::int(2), Value::float(2.0));
        assert_eq!(hash(&Value::int(2)), hash(&Value::float(2.0)));
    }

    #[test]
    fn type_inference_and_conformance() {
        let v = sue();
        let ty = v.infer_type().unwrap();
        assert!(v.conforms_to(&ty));
        assert!(Value::Null.conforms_to(&ty));
        assert!(!Value::int(3).conforms_to(&NestedType::str()));
        assert!(Value::int(3).conforms_to(&NestedType::float()));
    }

    #[test]
    fn path_navigation_through_bags() {
        let v = sue();
        let cities = v.get_path(&AttrPath::parse("address2.city")).unwrap();
        let bag = cities.as_bag().unwrap();
        assert_eq!(bag.total(), 2);
        assert_eq!(bag.mult(&Value::str("NY")), 1);
        assert!(v.contains_at_path(&AttrPath::parse("address2.city"), &Value::str("NY")));
        assert!(!v.contains_at_path(&AttrPath::parse("address2.city"), &Value::str("SF")));
        assert_eq!(v.get_path(&AttrPath::parse("name")).unwrap(), Value::str("Sue"));
        assert!(v.get_path(&AttrPath::parse("name.city")).is_err());
    }

    #[test]
    fn node_count_counts_structure() {
        assert_eq!(Value::int(1).node_count(), 1);
        let v = sue();
        // person tuple + name + address2 bag + 2 * (tuple + city + year)
        assert_eq!(v.node_count(), 1 + 1 + 1 + 2 * 3);
    }

    #[test]
    fn display_renders_nested_values() {
        let v = sue();
        let s = v.to_string();
        assert!(s.contains("Sue"));
        assert!(s.contains("NY"));
        assert_eq!(Value::Null.to_string(), "⊥");
    }
}
