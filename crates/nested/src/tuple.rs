//! Tuple values with named, ordered fields.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use crate::error::{DataError, DataResult};
use crate::sym::Sym;
use crate::types::TupleType;
use crate::value::Value;

/// A tuple value `⟨A₁ : v₁, ..., Aₙ : vₙ⟩`.
///
/// Field order is preserved (it determines the display order and the default
/// output schema), but equality, ordering, and hashing are *name-based*: two
/// tuples with the same name→value mapping are equal regardless of field
/// order, which is what the algebra's bag semantics require.
///
/// Attribute names are interned [`Sym`]s, so looking a field up by an already
/// interned symbol is a linear scan of integer compares, and copying a tuple's
/// field names never allocates. The name-based structural hash is computed
/// lazily and cached, so hash-canonicalized bag construction hashes each
/// (possibly `Arc`-shared) tuple at most once.
#[derive(Clone, Default)]
pub struct Tuple {
    fields: Vec<(Sym, Value)>,
    /// Lazily computed structural hash over the canonical (name-sorted)
    /// fields. Tuples are immutable (every "mutation" builds a new tuple), so
    /// the cache never goes stale; cloning carries it along.
    hash: OnceLock<u64>,
}

/// Maximum arity for which canonical iteration runs on a stack-allocated
/// index buffer; wider tuples fall back to a heap-allocated sort.
const INLINE_ARITY: usize = 16;

/// Fills `idx[..fields.len()]` with field indices in canonical (name-sorted)
/// order; stable insertion sort, so duplicate names keep declaration order
/// exactly like the previous `sort_by_key` canonicalization.
fn canonical_idx(fields: &[(Sym, Value)], idx: &mut [u8; INLINE_ARITY]) {
    let n = fields.len();
    for (i, slot) in idx.iter_mut().enumerate().take(n) {
        *slot = i as u8;
    }
    for i in 1..n {
        let mut j = i;
        while j > 0 && fields[idx[j - 1] as usize].0 > fields[idx[j] as usize].0 {
            idx.swap(j - 1, j);
            j -= 1;
        }
    }
}

impl Tuple {
    /// Builds a tuple from `(name, value)` pairs.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<Sym>,
    {
        Tuple::from_field_vec(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    fn from_field_vec(fields: Vec<(Sym, Value)>) -> Self {
        Tuple { fields, hash: OnceLock::new() }
    }

    /// The empty tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple::from_field_vec(Vec::new())
    }

    /// The `(name, value)` pairs in field order.
    pub fn fields(&self) -> &[(Sym, Value)] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The attribute names in field order, without allocating.
    pub fn attribute_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Looks up a field by name. Pass a [`Sym`] on hot paths so the lookup is
    /// a scan of integer compares; `&str` arguments are interned first.
    pub fn get(&self, name: impl Into<Sym>) -> Option<&Value> {
        let sym = name.into();
        self.fields.iter().find(|(n, _)| *n == sym).map(|(_, v)| v)
    }

    /// Looks up a field by name, erroring if absent. The error (with its list
    /// of available attributes) is only constructed on the miss path, so
    /// probing optional fields through this method stays cheap.
    pub fn get_required(&self, name: impl Into<Sym>) -> DataResult<&Value> {
        let sym = name.into();
        match self.get(sym) {
            Some(v) => Ok(v),
            None => Err(self.unknown_attribute(sym)),
        }
    }

    #[cold]
    #[inline(never)]
    fn unknown_attribute(&self, sym: Sym) -> DataError {
        DataError::UnknownAttribute {
            attribute: sym.as_str().to_string(),
            available: self.attribute_names().collect(),
        }
    }

    /// Whether the tuple contains a field called `name`.
    pub fn contains(&self, name: impl Into<Sym>) -> bool {
        self.get(name).is_some()
    }

    /// Projects the tuple onto the given attributes (the paper's `t.L`),
    /// preserving the requested order.
    pub fn project<S: Into<Sym> + Copy>(&self, names: &[S]) -> DataResult<Tuple> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let sym = (*name).into();
            fields.push((sym, self.get_required(sym)?.clone()));
        }
        Ok(Tuple::from_field_vec(fields))
    }

    /// Concatenates two tuples (the paper's `t ◦ t'`). Field names must be
    /// disjoint.
    pub fn concat(&self, other: &Tuple) -> DataResult<Tuple> {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        fields.extend_from_slice(&self.fields);
        for (name, value) in &other.fields {
            if self.contains(*name) {
                return Err(DataError::DuplicateAttribute(name.as_str().to_string()));
            }
            fields.push((*name, value.clone()));
        }
        Ok(Tuple::from_field_vec(fields))
    }

    /// Returns a copy with the listed attributes removed. Names are converted
    /// to symbols once per call (on the stack for up to 8 names), so the
    /// per-field filter is pure integer compares.
    pub fn without<S: Into<Sym> + Copy>(&self, names: &[S]) -> Tuple {
        let Some(&first) = names.first() else { return self.clone() };
        let mut inline = [first.into(); 8];
        let heap: Vec<Sym>;
        let syms: &[Sym] = if names.len() <= inline.len() {
            for (slot, name) in inline.iter_mut().zip(names.iter()) {
                *slot = (*name).into();
            }
            &inline[..names.len()]
        } else {
            heap = names.iter().map(|n| (*n).into()).collect();
            &heap
        };
        Tuple::from_field_vec(
            self.fields.iter().filter(|(n, _)| !syms.contains(n)).cloned().collect(),
        )
    }

    /// Returns a copy with an additional field appended (replacing any
    /// existing field of the same name).
    pub fn with_field(&self, name: impl Into<Sym>, value: Value) -> Tuple {
        let name = name.into();
        let mut fields: Vec<(Sym, Value)> =
            self.fields.iter().filter(|(n, _)| *n != name).cloned().collect();
        fields.push((name, value));
        Tuple::from_field_vec(fields)
    }

    /// Renames fields according to `(old, new)` pairs; unmentioned fields keep
    /// their names.
    pub fn rename(&self, mapping: &[(Sym, Sym)]) -> Tuple {
        Tuple::from_field_vec(
            self.fields
                .iter()
                .map(|(name, value)| {
                    let new_name = mapping
                        .iter()
                        .find(|(old, _)| old == name)
                        .map(|(_, new)| *new)
                        .unwrap_or(*name);
                    (new_name, value.clone())
                })
                .collect(),
        )
    }

    /// A tuple with the same attribute names whose values are all `⊥`
    /// (used to pad outer joins and outer flattens).
    pub fn null_padded<S: Into<Sym> + Copy>(names: &[S]) -> Tuple {
        Tuple::from_field_vec(names.iter().map(|n| ((*n).into(), Value::Null)).collect())
    }

    /// Navigates an attribute path starting at this tuple, mirroring
    /// [`Value::get_path`] without first wrapping the tuple in a [`Value`].
    pub fn get_path(&self, path: &crate::path::AttrPath) -> DataResult<Value> {
        match path.head() {
            None => Ok(Value::from_tuple(self.clone())),
            Some(head) => self.get_required(head)?.get_path(&path.tail()),
        }
    }

    /// Whether every field of this tuple conforms to the corresponding
    /// attribute of `ty` (attribute order is ignored; missing attributes fail).
    pub fn conforms_to(&self, ty: &TupleType) -> bool {
        if self.arity() != ty.arity() {
            return false;
        }
        self.fields
            .iter()
            .all(|(name, value)| ty.attribute(*name).map(|t| value.conforms_to(t)).unwrap_or(false))
    }

    /// Calls `f` with each `(name, value)` pair in canonical (name-sorted)
    /// order, without allocating for tuples up to `INLINE_ARITY` fields.
    fn for_each_canonical(&self, mut f: impl FnMut(Sym, &Value)) {
        let n = self.fields.len();
        if n <= INLINE_ARITY {
            let mut idx = [0u8; INLINE_ARITY];
            canonical_idx(&self.fields, &mut idx);
            for &i in &idx[..n] {
                let (name, value) = &self.fields[i as usize];
                f(*name, value);
            }
        } else {
            for (name, value) in self.canonical() {
                f(name, value);
            }
        }
    }

    /// The cached name-based structural hash. Equal tuples (same name→value
    /// mapping, any field order) have equal structural hashes.
    pub fn structural_hash(&self) -> u64 {
        *self.hash.get_or_init(|| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.for_each_canonical(|name, value| {
                name.hash(&mut h);
                value.hash(&mut h);
            });
            h.finish()
        })
    }

    /// Canonicalized `(name, value)` pairs sorted by name; basis for
    /// order-insensitive equality, ordering, and hashing of tuples too wide
    /// for the inline path.
    fn canonical(&self) -> Vec<(Sym, &Value)> {
        let mut fields: Vec<(Sym, &Value)> = self.fields.iter().map(|(n, v)| (*n, v)).collect();
        fields.sort_by_key(|a| a.0);
        fields
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple").field("fields", &self.fields).finish()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        // Different cached structural hashes prove inequality without a walk.
        if let (Some(a), Some(b)) = (self.hash.get(), other.hash.get()) {
            if a != b {
                return false;
            }
        }
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    /// Name-based canonical order, identical to comparing the name-sorted
    /// `(name, value)` vectors lexicographically (then by arity), but
    /// allocation-free for tuples up to `INLINE_ARITY` fields.
    fn cmp(&self, other: &Self) -> Ordering {
        let (na, nb) = (self.fields.len(), other.fields.len());
        if na <= INLINE_ARITY && nb <= INLINE_ARITY {
            let mut ia = [0u8; INLINE_ARITY];
            let mut ib = [0u8; INLINE_ARITY];
            canonical_idx(&self.fields, &mut ia);
            canonical_idx(&other.fields, &mut ib);
            for k in 0..na.min(nb) {
                let (sa, va) = &self.fields[ia[k] as usize];
                let (sb, vb) = &other.fields[ib[k] as usize];
                match sa.cmp(sb).then_with(|| va.cmp(vb)) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            na.cmp(&nb)
        } else {
            self.canonical().cmp(&other.canonical())
        }
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.structural_hash());
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {value}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(city: &str, year: i64) -> Tuple {
        Tuple::new([("city", Value::str(city)), ("year", Value::int(year))])
    }

    #[test]
    fn field_access() {
        let t = addr("NY", 2010);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get("city"), Some(&Value::str("NY")));
        assert!(t.get("zip").is_none());
        assert!(t.get_required("zip").is_err());
        assert_eq!(t.attribute_names().collect::<Vec<_>>(), vec!["city", "year"]);
    }

    #[test]
    fn symbol_lookup_matches_string_lookup() {
        let t = addr("NY", 2010);
        let city = Sym::intern("city");
        assert_eq!(t.get(city), t.get("city"));
        assert!(t.contains(city));
    }

    #[test]
    fn equality_ignores_field_order() {
        let a = Tuple::new([("x", Value::int(1)), ("y", Value::int(2))]);
        let b = Tuple::new([("y", Value::int(2)), ("x", Value::int(1))]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |t: &Tuple| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn project_concat_without() {
        let t = addr("LA", 2019);
        let p = t.project(&["city"]).unwrap();
        assert_eq!(p.arity(), 1);
        assert!(t.project(&["nope"]).is_err());

        let extra = Tuple::new([("name", Value::str("Sue"))]);
        let joined = t.concat(&extra).unwrap();
        assert_eq!(joined.arity(), 3);
        assert!(joined.concat(&extra).is_err());

        let smaller = joined.without(&["year", "city"]);
        assert_eq!(smaller.attribute_names().collect::<Vec<_>>(), vec!["name"]);
    }

    #[test]
    fn rename_and_with_field() {
        let t = addr("LA", 2019);
        let r = t.rename(&[("city".into(), "town".into())]);
        assert!(r.contains("town"));
        let w = t.with_field("city", Value::str("SF"));
        assert_eq!(w.get("city"), Some(&Value::str("SF")));
        assert_eq!(w.arity(), 2);
        let x = t.with_field("zip", Value::int(90001));
        assert_eq!(x.arity(), 3);
    }

    #[test]
    fn null_padding_and_conformance() {
        let padded = Tuple::null_padded(&["city", "year"]);
        assert!(padded.get("city").unwrap().is_null());
        let ty = TupleType::new([
            ("city", crate::types::NestedType::str()),
            ("year", crate::types::NestedType::int()),
        ])
        .unwrap();
        assert!(padded.conforms_to(&ty));
        assert!(addr("NY", 2010).conforms_to(&ty));
        assert!(!Tuple::new([("city", Value::str("NY"))]).conforms_to(&ty));
    }

    #[test]
    fn ordering_is_stable() {
        let mut ts = [addr("NY", 2018), addr("LA", 2019), addr("LA", 2010)];
        ts.sort();
        assert_eq!(ts[0].get("city"), Some(&Value::str("LA")));
        assert_eq!(ts[0].get("year"), Some(&Value::int(2010)));
    }
}
