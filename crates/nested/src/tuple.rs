//! Tuple values with named, ordered fields.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{DataError, DataResult};
use crate::types::TupleType;
use crate::value::Value;

/// A tuple value `⟨A₁ : v₁, ..., Aₙ : vₙ⟩`.
///
/// Field order is preserved (it determines the display order and the default
/// output schema), but equality, ordering, and hashing are *name-based*: two
/// tuples with the same name→value mapping are equal regardless of field
/// order, which is what the algebra's bag semantics require.
#[derive(Debug, Clone, Default)]
pub struct Tuple {
    fields: Vec<(String, Value)>,
}

impl Tuple {
    /// Builds a tuple from `(name, value)` pairs.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Tuple { fields: fields.into_iter().map(|(n, v)| (n.into(), v)).collect() }
    }

    /// The empty tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple { fields: Vec::new() }
    }

    /// The `(name, value)` pairs in field order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The attribute names in field order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up a field by name, erroring if absent.
    pub fn get_required(&self, name: &str) -> DataResult<&Value> {
        self.get(name).ok_or_else(|| DataError::UnknownAttribute {
            attribute: name.to_string(),
            available: self.fields.iter().map(|(n, _)| n.clone()).collect(),
        })
    }

    /// Whether the tuple contains a field called `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Projects the tuple onto the given attributes (the paper's `t.L`),
    /// preserving the requested order.
    pub fn project(&self, names: &[&str]) -> DataResult<Tuple> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            fields.push(((*name).to_string(), self.get_required(name)?.clone()));
        }
        Ok(Tuple { fields })
    }

    /// Concatenates two tuples (the paper's `t ◦ t'`). Field names must be
    /// disjoint.
    pub fn concat(&self, other: &Tuple) -> DataResult<Tuple> {
        let mut fields = self.fields.clone();
        for (name, value) in &other.fields {
            if self.contains(name) {
                return Err(DataError::DuplicateAttribute(name.clone()));
            }
            fields.push((name.clone(), value.clone()));
        }
        Ok(Tuple { fields })
    }

    /// Returns a copy with the listed attributes removed.
    pub fn without(&self, names: &[&str]) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .filter(|(n, _)| !names.contains(&n.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Returns a copy with an additional field appended (replacing any
    /// existing field of the same name).
    pub fn with_field(&self, name: impl Into<String>, value: Value) -> Tuple {
        let name = name.into();
        let mut fields: Vec<(String, Value)> =
            self.fields.iter().filter(|(n, _)| *n != name).cloned().collect();
        fields.push((name, value));
        Tuple { fields }
    }

    /// Renames fields according to `(old, new)` pairs; unmentioned fields keep
    /// their names.
    pub fn rename(&self, mapping: &[(String, String)]) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .map(|(name, value)| {
                    let new_name = mapping
                        .iter()
                        .find(|(old, _)| old == name)
                        .map(|(_, new)| new.clone())
                        .unwrap_or_else(|| name.clone());
                    (new_name, value.clone())
                })
                .collect(),
        }
    }

    /// A tuple with the same attribute names whose values are all `⊥`
    /// (used to pad outer joins and outer flattens).
    pub fn null_padded(names: &[&str]) -> Tuple {
        Tuple { fields: names.iter().map(|n| ((*n).to_string(), Value::Null)).collect() }
    }

    /// Whether every field of this tuple conforms to the corresponding
    /// attribute of `ty` (attribute order is ignored; missing attributes fail).
    pub fn conforms_to(&self, ty: &TupleType) -> bool {
        if self.arity() != ty.arity() {
            return false;
        }
        self.fields
            .iter()
            .all(|(name, value)| ty.attribute(name).map(|t| value.conforms_to(t)).unwrap_or(false))
    }

    /// Canonicalized `(name, value)` pairs sorted by name; basis for
    /// order-insensitive equality, ordering, and hashing.
    fn canonical(&self) -> Vec<(&String, &Value)> {
        let mut fields: Vec<(&String, &Value)> = self.fields.iter().map(|(n, v)| (n, v)).collect();
        fields.sort_by(|a, b| a.0.cmp(b.0));
        fields
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical().cmp(&other.canonical())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for (name, value) in self.canonical() {
            name.hash(state);
            value.hash(state);
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {value}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(city: &str, year: i64) -> Tuple {
        Tuple::new([("city", Value::str(city)), ("year", Value::int(year))])
    }

    #[test]
    fn field_access() {
        let t = addr("NY", 2010);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get("city"), Some(&Value::str("NY")));
        assert!(t.get("zip").is_none());
        assert!(t.get_required("zip").is_err());
        assert_eq!(t.attribute_names(), vec!["city", "year"]);
    }

    #[test]
    fn equality_ignores_field_order() {
        let a = Tuple::new([("x", Value::int(1)), ("y", Value::int(2))]);
        let b = Tuple::new([("y", Value::int(2)), ("x", Value::int(1))]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |t: &Tuple| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn project_concat_without() {
        let t = addr("LA", 2019);
        let p = t.project(&["city"]).unwrap();
        assert_eq!(p.arity(), 1);
        assert!(t.project(&["nope"]).is_err());

        let extra = Tuple::new([("name", Value::str("Sue"))]);
        let joined = t.concat(&extra).unwrap();
        assert_eq!(joined.arity(), 3);
        assert!(joined.concat(&extra).is_err());

        let smaller = joined.without(&["year", "city"]);
        assert_eq!(smaller.attribute_names(), vec!["name"]);
    }

    #[test]
    fn rename_and_with_field() {
        let t = addr("LA", 2019);
        let r = t.rename(&[("city".into(), "town".into())]);
        assert!(r.contains("town"));
        let w = t.with_field("city", Value::str("SF"));
        assert_eq!(w.get("city"), Some(&Value::str("SF")));
        assert_eq!(w.arity(), 2);
        let x = t.with_field("zip", Value::int(90001));
        assert_eq!(x.arity(), 3);
    }

    #[test]
    fn null_padding_and_conformance() {
        let padded = Tuple::null_padded(&["city", "year"]);
        assert!(padded.get("city").unwrap().is_null());
        let ty = TupleType::new([
            ("city", crate::types::NestedType::str()),
            ("year", crate::types::NestedType::int()),
        ])
        .unwrap();
        assert!(padded.conforms_to(&ty));
        assert!(addr("NY", 2010).conforms_to(&ty));
        assert!(!Tuple::new([("city", Value::str("NY"))]).conforms_to(&ty));
    }

    #[test]
    fn ordering_is_stable() {
        let mut ts = [addr("NY", 2018), addr("LA", 2019), addr("LA", 2010)];
        ts.sort();
        assert_eq!(ts[0].get("city"), Some(&Value::str("LA")));
        assert_eq!(ts[0].get("year"), Some(&Value::int(2010)));
    }
}
