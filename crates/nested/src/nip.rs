//! Nested instances with placeholders (NIPs) and the matching relation `≃`.
//!
//! A NIP (Definition 3) is a nested instance in which
//!
//! * the *instance placeholder* `?` ([`Nip::Any`]) may stand in for any value
//!   of the expected type, and
//! * the *multiplicity placeholder* `*` ([`Nip::Star`]) may appear (at most
//!   once) as an element of a nested relation and stands in for zero or more
//!   tuples of the relation's tuple type.
//!
//! Matching (Definition 4) is structural for primitives and tuples; for bags it
//! requires an *assignment* of instance tuples (with multiplicities) to NIP
//! entries such that every instance tuple is fully assigned (4b), every
//! non-`*` entry receives exactly its own multiplicity (4c), and assignments
//! only pair equal values, `?`, or `*` (4a). We generalize bag entries from
//! "fully specified tuple, `?`, or `*`" to arbitrary NIPs, which is needed when
//! schema backtracing pushes partially-specified constraints (e.g.
//! `⟨city: NY, year: ?⟩`) below nesting operators; the paper's entries are the
//! special case. Feasibility of the assignment is decided with a small
//! max-flow computation.

use std::fmt;

use crate::error::{DataError, DataResult};
use crate::path::AttrPath;
use crate::sym::Sym;
use crate::types::{NestedType, TupleType};
use crate::value::Value;

/// A comparison constraint usable as a NIP leaf.
///
/// Strict NIPs per Definition 3 only contain values and placeholders, but the
/// paper's evaluation poses why-not questions such as `⟨avgDisc: > 0.45, ?⟩`
/// or `⟨revenue: > 0⟩` (Table 9); [`NipCmp`] captures these bounded leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NipCmp {
    /// Strictly less than the bound.
    Lt,
    /// Less than or equal to the bound.
    Le,
    /// Strictly greater than the bound.
    Gt,
    /// Greater than or equal to the bound.
    Ge,
    /// Different from the bound.
    Ne,
}

impl NipCmp {
    /// Applies the comparison `value ⋄ bound`, numerically when possible.
    ///
    /// As a special case, `≠ ⊥` acts as a *not-null* test (used by schema
    /// backtracing to require that an attribute contributes an actual value to
    /// an aggregate or computed column).
    pub fn apply(self, value: &Value, bound: &Value) -> bool {
        if bound.is_null() {
            return self == NipCmp::Ne && !value.is_null();
        }
        if value.is_null() {
            return false;
        }
        let ord = match (value.as_float(), bound.as_float()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            _ => Some(value.cmp(bound)),
        };
        let Some(ord) = ord else { return false };
        match self {
            NipCmp::Lt => ord == std::cmp::Ordering::Less,
            NipCmp::Le => ord != std::cmp::Ordering::Greater,
            NipCmp::Gt => ord == std::cmp::Ordering::Greater,
            NipCmp::Ge => ord != std::cmp::Ordering::Less,
            NipCmp::Ne => ord != std::cmp::Ordering::Equal,
        }
    }
}

impl fmt::Display for NipCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NipCmp::Lt => "<",
            NipCmp::Le => "≤",
            NipCmp::Gt => ">",
            NipCmp::Ge => "≥",
            NipCmp::Ne => "≠",
        };
        write!(f, "{s}")
    }
}

/// A nested instance with placeholders.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Nip {
    /// The instance placeholder `?`: matches any value.
    Any,
    /// The multiplicity placeholder `*`: matches zero or more tuples of a
    /// nested relation. Only valid directly inside [`Nip::Bag`].
    Star,
    /// A fully specified value (matched by equality).
    Value(Value),
    /// A bounded leaf: matches any value satisfying `value ⋄ bound`.
    Pred(NipCmp, Value),
    /// A tuple whose attributes are themselves NIPs.
    Tuple(Vec<(Sym, Nip)>),
    /// A nested relation whose elements are NIPs (at most one `*`).
    Bag(Vec<Nip>),
}

impl Nip {
    /// Shorthand for an exact-value NIP.
    pub fn val(v: impl Into<Value>) -> Nip {
        Nip::Value(v.into())
    }

    /// Shorthand for a bounded leaf, e.g. `Nip::pred(NipCmp::Gt, 0i64)` for `> 0`.
    pub fn pred(op: NipCmp, bound: impl Into<Value>) -> Nip {
        Nip::Pred(op, bound.into())
    }

    /// Builds a tuple NIP from `(name, nip)` pairs.
    pub fn tuple<I, S>(fields: I) -> Nip
    where
        I: IntoIterator<Item = (S, Nip)>,
        S: Into<Sym>,
    {
        Nip::Tuple(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    /// Builds a bag NIP from element NIPs.
    pub fn bag<I>(elements: I) -> Nip
    where
        I: IntoIterator<Item = Nip>,
    {
        Nip::Bag(elements.into_iter().collect())
    }

    /// A bag NIP `{{ element, * }}`: "contains at least one element matching
    /// `element`" — the most common shape produced by schema backtracing.
    pub fn bag_containing(element: Nip) -> Nip {
        Nip::Bag(vec![element, Nip::Star])
    }

    /// An all-`?` tuple NIP over the attributes of `ty` — the "unconstrained"
    /// NIP that matches every tuple of that type.
    pub fn any_for_tuple_type(ty: &TupleType) -> Nip {
        Nip::Tuple(ty.fields().iter().map(|(name, _)| (*name, Nip::Any)).collect())
    }

    /// Validates the structural constraints of Definition 3: `*` may only
    /// appear directly inside a bag, and each bag contains at most one `*`.
    pub fn validate(&self) -> DataResult<()> {
        self.validate_inner(false)
    }

    fn validate_inner(&self, inside_bag: bool) -> DataResult<()> {
        match self {
            Nip::Star => {
                if inside_bag {
                    Ok(())
                } else {
                    Err(DataError::InvalidNip(
                        "`*` may only appear inside a nested relation".into(),
                    ))
                }
            }
            Nip::Any | Nip::Value(_) | Nip::Pred(..) => Ok(()),
            Nip::Tuple(fields) => {
                for (_, nip) in fields {
                    nip.validate_inner(false)?;
                }
                Ok(())
            }
            Nip::Bag(elements) => {
                let stars = elements.iter().filter(|e| matches!(e, Nip::Star)).count();
                if stars > 1 {
                    return Err(DataError::InvalidNip(
                        "a nested relation NIP may contain at most one `*`".into(),
                    ));
                }
                for e in elements {
                    if !matches!(e, Nip::Star) {
                        e.validate_inner(false)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Whether this NIP is completely unconstrained (matches every value of
    /// the right shape): `?`, a tuple of unconstrained NIPs, or `{{ * }}`.
    pub fn is_unconstrained(&self) -> bool {
        match self {
            Nip::Any => true,
            Nip::Star => true,
            Nip::Value(_) | Nip::Pred(..) => false,
            Nip::Tuple(fields) => fields.iter().all(|(_, n)| n.is_unconstrained()),
            Nip::Bag(elements) => elements.iter().all(|e| matches!(e, Nip::Star)),
        }
    }

    /// Access a field of a tuple NIP.
    pub fn field(&self, name: impl Into<Sym>) -> Option<&Nip> {
        let sym = name.into();
        match self {
            Nip::Tuple(fields) => fields.iter().find(|(n, _)| *n == sym).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns a copy of a tuple NIP with field `name` replaced (or added).
    pub fn with_field(&self, name: impl Into<Sym>, nip: Nip) -> Nip {
        let name = name.into();
        match self {
            Nip::Tuple(fields) => {
                let mut fields = fields.clone();
                if let Some(slot) = fields.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = nip;
                } else {
                    fields.push((name, nip));
                }
                Nip::Tuple(fields)
            }
            _ => Nip::Tuple(vec![(name, nip)]),
        }
    }

    /// Constrains the NIP at `path` (interpreted against the tuple type
    /// `schema`) to `leaf`.
    ///
    /// Navigation through a relation-typed attribute introduces a
    /// `{{ element, * }}` bag NIP ("contains at least one element ..."), and
    /// repeated constraints into the same relation refine the *same* element
    /// NIP, so that `address2.city = NY` and `address2.year = 2019` together
    /// require one nested tuple with both properties (cf. Example 7).
    pub fn constrain(&self, path: &AttrPath, leaf: Nip, schema: &TupleType) -> DataResult<Nip> {
        if path.is_empty() {
            return Ok(leaf);
        }
        let head = path.head().expect("non-empty path");
        let attr_ty = schema.attribute_required(head)?;
        let base = match self {
            Nip::Tuple(_) => self.clone(),
            _ => Nip::any_for_tuple_type(schema),
        };
        let existing = base.field(head).cloned().unwrap_or(Nip::Any);
        let rest = path.tail();
        let new_field = match attr_ty {
            NestedType::Prim(_) => {
                if !rest.is_empty() {
                    return Err(DataError::PathMismatch {
                        path: path.to_string(),
                        found: "primitive attribute".into(),
                    });
                }
                leaf
            }
            NestedType::Tuple(inner_ty) => {
                if rest.is_empty() {
                    leaf
                } else {
                    let inner = match existing {
                        Nip::Tuple(_) => existing,
                        _ => Nip::any_for_tuple_type(inner_ty),
                    };
                    inner.constrain(&rest, leaf, inner_ty)?
                }
            }
            NestedType::Relation(inner_ty) => {
                if rest.is_empty() {
                    leaf
                } else {
                    // Reuse the existing constrained element if there is one;
                    // the pushed-down NIP always keeps a trailing `*`
                    // ("contains at least one matching element").
                    let element = match existing {
                        Nip::Bag(mut elements) => {
                            elements.retain(|e| !matches!(e, Nip::Star));
                            elements
                                .into_iter()
                                .next()
                                .unwrap_or_else(|| Nip::any_for_tuple_type(inner_ty))
                        }
                        _ => Nip::any_for_tuple_type(inner_ty),
                    };
                    let constrained = element.constrain(&rest, leaf, inner_ty)?;
                    Nip::Bag(vec![constrained, Nip::Star])
                }
            }
        };
        Ok(base.with_field(head, new_field))
    }

    /// The matching relation `I ≃ I'` of Definition 4: does `value` match this
    /// NIP?
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Nip::Any => true,
            // `*` outside of bag-assignment context behaves like "zero or more
            // tuples", which any value trivially satisfies only when matched
            // as part of a bag; standalone it matches nothing but a bag.
            Nip::Star => matches!(value, Value::Bag(_)),
            Nip::Value(v) => v == value,
            Nip::Pred(op, bound) => op.apply(value, bound),
            Nip::Tuple(fields) => match value {
                Value::Tuple(t) => fields.iter().all(|(name, nip)| match t.get(*name) {
                    Some(v) => nip.matches(v),
                    None => false,
                }),
                Value::Null => false,
                _ => false,
            },
            Nip::Bag(entries) => match value {
                Value::Bag(bag) => bag_matches(bag, entries),
                _ => false,
            },
        }
    }

    /// Whether `value` could *contribute* to a match of this NIP: like
    /// [`Nip::matches`], but bag NIPs are satisfied as soon as the listed
    /// entries can be covered, even if the instance has additional tuples and
    /// no `*` is present, and missing tuple attributes are ignored. Used for
    /// compatibility checks on *input* tuples, where the rest of the query may
    /// still remove or restructure the extra data.
    pub fn compatible(&self, value: &Value) -> bool {
        match self {
            Nip::Any | Nip::Star => true,
            Nip::Value(v) => v == value,
            Nip::Pred(op, bound) => op.apply(value, bound),
            Nip::Tuple(fields) => match value {
                Value::Tuple(t) => fields.iter().all(|(name, nip)| match t.get(*name) {
                    Some(v) => nip.compatible(v),
                    None => true,
                }),
                _ => false,
            },
            Nip::Bag(entries) => match value {
                Value::Bag(bag) => entries
                    .iter()
                    .filter(|e| !matches!(e, Nip::Star))
                    .all(|entry| bag.iter().any(|(v, _)| entry.compatible(v))),
                _ => false,
            },
        }
    }

    /// Whether this NIP is a valid NIP of type `ty` (shape check).
    pub fn conforms_to(&self, ty: &NestedType) -> bool {
        match (self, ty) {
            (Nip::Any, _) => true,
            (Nip::Star, NestedType::Relation(_)) => true,
            (Nip::Star, _) => false,
            (Nip::Value(v), _) => v.conforms_to(ty),
            (Nip::Pred(_, v), _) => v.conforms_to(ty) || matches!(ty, NestedType::Prim(_)),
            (Nip::Tuple(fields), NestedType::Tuple(tt)) => fields.iter().all(|(name, nip)| {
                tt.attribute(*name).map(|t| nip.conforms_to(t)).unwrap_or(false)
            }),
            (Nip::Bag(elements), NestedType::Relation(tt)) => elements.iter().all(|e| match e {
                Nip::Star => true,
                other => other.conforms_to(&NestedType::Tuple(tt.clone())),
            }),
            _ => false,
        }
    }
}

/// Decides whether a bag instance matches a list of NIP entries via the
/// assignment semantics of Definition 4 (condition 4): a feasibility problem
/// solved with max-flow on a small bipartite network.
fn bag_matches(bag: &crate::bag::Bag, entries: &[Nip]) -> bool {
    let star_present = entries.iter().any(|e| matches!(e, Nip::Star));
    let demands: Vec<&Nip> = entries.iter().filter(|e| !matches!(e, Nip::Star)).collect();
    let supplies: Vec<(&Value, u64)> = bag.iter().map(|(v, m)| (v, *m)).collect();
    let total_supply: u64 = supplies.iter().map(|(_, m)| m).sum();
    let total_demand = demands.len() as u64;

    // Condition 4b: every instance tuple must be assigned. Without `*`, the
    // only sinks are the explicit entries, so the totals must agree.
    if !star_present && total_supply != total_demand {
        return false;
    }
    if total_demand == 0 {
        // Only `*` (or nothing): feasible iff the bag is empty or `*` absorbs it.
        return star_present || total_supply == 0;
    }

    // Bipartite matching with supply capacities: each demand entry (capacity
    // 1) must be matched to a supply value whose multiplicity is not yet
    // exhausted and which the entry NIP matches; `*` absorbs leftovers and
    // needs no node. This is Kuhn's augmenting-path algorithm, run from the
    // demand side, with supplies of capacity `mult`.
    let n_sup = supplies.len();
    let n_dem = demands.len();
    // adjacency: demand j -> supplies i whose value matches the entry NIP
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n_dem];
    for (j, entry) in demands.iter().enumerate() {
        for (i, (value, _)) in supplies.iter().enumerate() {
            if entry.matches(value) {
                edges[j].push(i);
            }
        }
    }

    let capacity: Vec<u64> = supplies.iter().map(|(_, m)| *m).collect();
    // For each supply, the list of demands currently assigned to it.
    let mut assigned_to: Vec<Vec<usize>> = vec![Vec::new(); n_sup];
    // For each demand, the supply it is assigned to (if any).
    let mut assignment: Vec<Option<usize>> = vec![None; n_dem];

    fn try_assign(
        j: usize,
        edges: &[Vec<usize>],
        capacity: &[u64],
        assigned_to: &mut Vec<Vec<usize>>,
        assignment: &mut Vec<Option<usize>>,
        visited: &mut Vec<bool>,
    ) -> bool {
        for &i in &edges[j] {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            if (assigned_to[i].len() as u64) < capacity[i] {
                assigned_to[i].push(j);
                assignment[j] = Some(i);
                return true;
            }
            // Supply i is full: try to move one of its demands elsewhere.
            let current: Vec<usize> = assigned_to[i].clone();
            for j2 in current {
                if try_assign(j2, edges, capacity, assigned_to, assignment, visited) {
                    // j2 moved to another supply; re-point bookkeeping.
                    assigned_to[i].retain(|&x| x != j2);
                    assigned_to[i].push(j);
                    assignment[j] = Some(i);
                    return true;
                }
            }
        }
        false
    }

    let mut matched = 0u64;
    for j in 0..n_dem {
        let mut visited = vec![false; n_sup];
        if try_assign(j, &edges, &capacity, &mut assigned_to, &mut assignment, &mut visited) {
            matched += 1;
        }
    }

    matched == total_demand
}

impl fmt::Display for Nip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nip::Any => write!(f, "?"),
            Nip::Star => write!(f, "*"),
            Nip::Value(v) => write!(f, "{v}"),
            Nip::Pred(op, bound) => write!(f, "{op} {bound}"),
            Nip::Tuple(fields) => {
                write!(f, "⟨")?;
                for (i, (name, nip)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {nip}")?;
                }
                write!(f, "⟩")
            }
            Nip::Bag(elements) => {
                write!(f, "{{{{")?;
                for (i, nip) in elements.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{nip}")?;
                }
                write!(f, "}}}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NestedType;

    fn name_tuple(name: &str) -> Value {
        Value::tuple([("name", Value::str(name))])
    }

    /// The output tuple of the running example: ⟨city: NY, nList: {{Sue², Peter}}⟩.
    fn example_output_tuple() -> Value {
        Value::from_tuple(crate::tuple::Tuple::new([
            ("city", Value::str("NY")),
            (
                "nList",
                Value::from_bag(crate::bag::Bag::from_entries([
                    (name_tuple("Sue"), 2),
                    (name_tuple("Peter"), 1),
                ])),
            ),
        ]))
    }

    #[test]
    fn example_6_star_versus_two_any() {
        // t_ex = ⟨city: NY, nList: {{?, *}}⟩ matches, t'_ex = ⟨city: NY, nList: {{?, ?}}⟩ does not.
        let t_ex =
            Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))]);
        let t_ex2 =
            Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Any]))]);
        let value = example_output_tuple();
        assert!(t_ex.matches(&value));
        assert!(!t_ex2.matches(&value));
    }

    #[test]
    fn example_7_matching_nested_input_tuple() {
        // Sue's tuple from Figure 1a matches
        // ⟨Name: Sue, address1: ?, address2: {{⟨city: ?, year: 2019⟩, *}}⟩.
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            (
                "address1",
                Value::bag([
                    Value::tuple([("city", Value::str("LA")), ("year", Value::int(2010))]),
                    Value::tuple([("city", Value::str("SF")), ("year", Value::int(2018))]),
                ]),
            ),
            (
                "address2",
                Value::bag([
                    Value::tuple([("city", Value::str("LA")), ("year", Value::int(2019))]),
                    Value::tuple([("city", Value::str("NY")), ("year", Value::int(2018))]),
                ]),
            ),
        ]);
        let nip = Nip::tuple([
            ("name", Nip::val("Sue")),
            ("address1", Nip::Any),
            (
                "address2",
                Nip::bag([
                    Nip::tuple([("city", Nip::Any), ("year", Nip::val(Value::int(2019)))]),
                    Nip::Star,
                ]),
            ),
        ]);
        assert!(nip.matches(&sue));
        // Peter's tuple does not match (no address2 entry with year 2019... actually
        // Peter has LA 2019 in address2? In Figure 1a Peter's address2 is
        // {(LA, 2010), (SF, 2018)}; build it accordingly).
        let peter = Value::tuple([
            ("name", Value::str("Peter")),
            ("address1", Value::bag([])),
            (
                "address2",
                Value::bag([
                    Value::tuple([("city", Value::str("LA")), ("year", Value::int(2010))]),
                    Value::tuple([("city", Value::str("SF")), ("year", Value::int(2018))]),
                ]),
            ),
        ]);
        assert!(!nip.matches(&peter));
    }

    #[test]
    fn bag_matching_multiplicities_exact_without_star() {
        // {{1, 1}} matches {{?, ?}} but {{1}} and {{1,1,1}} do not.
        let nip = Nip::bag([Nip::Any, Nip::Any]);
        assert!(nip.matches(&Value::bag([Value::int(1), Value::int(1)])));
        assert!(!nip.matches(&Value::bag([Value::int(1)])));
        assert!(!nip.matches(&Value::bag([Value::int(1), Value::int(1), Value::int(1)])));
    }

    #[test]
    fn bag_matching_requires_distinct_assignment() {
        // {{⟨n:1⟩, ⟨n:2⟩}} against entries [val ⟨n:1⟩, val ⟨n:1⟩] must fail:
        // the second demand cannot be satisfied.
        let one = Value::tuple([("n", Value::int(1))]);
        let two = Value::tuple([("n", Value::int(2))]);
        let nip = Nip::bag([Nip::val(one.clone()), Nip::val(one.clone())]);
        assert!(!nip.matches(&Value::bag([one.clone(), two.clone()])));
        // But it matches a bag with two copies of ⟨n:1⟩ ... plus star to absorb ⟨n:2⟩.
        let nip_star = Nip::bag([Nip::val(one.clone()), Nip::val(one.clone()), Nip::Star]);
        assert!(nip_star.matches(&Value::bag([one.clone(), one.clone(), two])));
        assert!(!nip_star.matches(&Value::bag([one.clone()])));
    }

    #[test]
    fn rerouting_flow_finds_feasible_assignment() {
        // Entries: [val ⟨n:1⟩, ?]; bag {{⟨n:1⟩, ⟨n:2⟩}}.
        // A greedy assignment of ⟨n:1⟩ to `?` must be rerouted so that the
        // exact entry is still satisfiable.
        let one = Value::tuple([("n", Value::int(1))]);
        let two = Value::tuple([("n", Value::int(2))]);
        let nip = Nip::bag([Nip::Any, Nip::val(one.clone())]);
        assert!(nip.matches(&Value::bag([one, two])));
    }

    #[test]
    fn validation_rules() {
        assert!(Nip::Star.validate().is_err());
        assert!(Nip::tuple([("a", Nip::Star)]).validate().is_err());
        assert!(Nip::bag([Nip::Star, Nip::Star]).validate().is_err());
        assert!(Nip::bag([Nip::Any, Nip::Star]).validate().is_ok());
        assert!(Nip::tuple([("a", Nip::bag([Nip::Star]))]).validate().is_ok());
    }

    #[test]
    fn unconstrained_detection() {
        assert!(Nip::Any.is_unconstrained());
        assert!(Nip::tuple([("a", Nip::Any)]).is_unconstrained());
        assert!(Nip::bag([Nip::Star]).is_unconstrained());
        assert!(!Nip::val("x").is_unconstrained());
        assert!(!Nip::tuple([("a", Nip::val(1i64))]).is_unconstrained());
    }

    #[test]
    fn constrain_builds_nested_nip() {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person = TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address.clone())),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let nip = Nip::any_for_tuple_type(&person)
            .constrain(&AttrPath::parse("address2.city"), Nip::val("NY"), &person)
            .unwrap();
        // The NIP now requires an address2 element with city NY.
        let rendered = nip.to_string();
        assert!(rendered.contains("NY"));
        assert!(rendered.contains("*"));
        // A second constraint into the same nested relation refines the same element.
        let nip2 = nip
            .constrain(&AttrPath::parse("address2.year"), Nip::val(Value::int(2019)), &person)
            .unwrap();
        let sue_ok = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([])),
            (
                "address2",
                Value::bag([Value::tuple([
                    ("city", Value::str("NY")),
                    ("year", Value::int(2019)),
                ])]),
            ),
        ]);
        let sue_split = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([])),
            (
                "address2",
                Value::bag([
                    Value::tuple([("city", Value::str("NY")), ("year", Value::int(2018))]),
                    Value::tuple([("city", Value::str("LA")), ("year", Value::int(2019))]),
                ]),
            ),
        ]);
        assert!(nip2.matches(&sue_ok));
        // Both constraints must hold on the *same* nested tuple.
        assert!(!nip2.matches(&sue_split));
    }

    #[test]
    fn compatibility_is_weaker_than_matching() {
        let nip = Nip::bag([Nip::val(Value::tuple([("n", Value::int(1))]))]);
        let bag = Value::bag([
            Value::tuple([("n", Value::int(1))]),
            Value::tuple([("n", Value::int(2))]),
        ]);
        assert!(!nip.matches(&bag));
        assert!(nip.compatible(&bag));
        // Tuple compatibility ignores missing attributes.
        let tnip = Nip::tuple([("missing", Nip::val(1i64))]);
        assert!(tnip.compatible(&Value::tuple([("other", Value::int(5))])));
        assert!(!tnip.matches(&Value::tuple([("other", Value::int(5))])));
    }

    #[test]
    fn conforms_to_checks_shape() {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let rel = NestedType::Relation(address.clone());
        assert!(Nip::Any.conforms_to(&rel));
        assert!(Nip::bag([Nip::Star]).conforms_to(&rel));
        assert!(Nip::bag([Nip::tuple([("city", Nip::val("NY"))]), Nip::Star]).conforms_to(&rel));
        assert!(!Nip::val(3i64).conforms_to(&rel));
        assert!(!Nip::Star.conforms_to(&NestedType::int()));
    }

    #[test]
    fn display_renders_placeholders() {
        let nip =
            Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))]);
        assert_eq!(nip.to_string(), "⟨city: \"NY\", nList: {{?, *}}⟩");
    }
}
