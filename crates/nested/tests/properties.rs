//! Property-style tests for the nested data model: bag algebra laws, NIP
//! matching invariants, and tree-edit-distance metric properties.
//!
//! Inputs are generated with the workspace's deterministic PRNG instead of
//! `proptest` (hermetic builds have no external crates); each property is
//! checked over a few hundred seeded random cases.

use nested_data::{tree_distance, Bag, Nip, Value};
use whynot_rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 200;

/// A small primitive value.
fn primitive(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-50i64..50)),
        _ => {
            let len = rng.gen_range(0..=3usize);
            let s: String = (0..len).map(|_| *rng.choose(&['a', 'b', 'c'])).collect();
            Value::str(s)
        }
    }
}

/// A flat tuple over a fixed small schema.
fn flat_tuple(rng: &mut StdRng) -> Value {
    Value::tuple([("a", primitive(rng)), ("b", primitive(rng))])
}

/// A small bag of flat tuples.
fn small_bag(rng: &mut StdRng) -> Bag {
    let n = rng.gen_range(0..6usize);
    Bag::from_values((0..n).map(|_| flat_tuple(rng)))
}

/// Bag union is commutative and its totals add up.
#[test]
fn bag_union_commutative() {
    let mut rng = StdRng::seed_from_u64(0x6261_6775);
    for _ in 0..CASES {
        let a = small_bag(&mut rng);
        let b = small_bag(&mut rng);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).total(), a.total() + b.total());
    }
}

/// Bag difference never yields negative multiplicities and is bounded by
/// the left operand.
#[test]
fn bag_difference_bounded() {
    let mut rng = StdRng::seed_from_u64(0x6261_6764);
    for _ in 0..CASES {
        let a = small_bag(&mut rng);
        let b = small_bag(&mut rng);
        let d = a.difference(&b);
        assert!(d.total() <= a.total());
        for (v, m) in d.iter() {
            assert!(*m <= a.mult(v));
        }
        // a = (a − b) ∪ (a ∩ b) in terms of totals.
        let kept: u64 = a.iter().map(|(v, m)| (*m).min(b.mult(v))).sum();
        assert_eq!(d.total() + kept, a.total());
    }
}

/// Deduplication keeps exactly the distinct values with multiplicity one.
#[test]
fn dedup_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x6465_6475);
    for _ in 0..CASES {
        let a = small_bag(&mut rng);
        let d = a.dedup();
        assert_eq!(d.total() as usize, a.distinct());
        assert_eq!(d.dedup(), d);
    }
}

/// Bag equality is insensitive to insertion order.
#[test]
fn bag_equality_order_insensitive() {
    let mut rng = StdRng::seed_from_u64(0x6f72_6465);
    for _ in 0..CASES {
        let n = rng.gen_range(0..6usize);
        let values: Vec<Value> = (0..n).map(|_| flat_tuple(&mut rng)).collect();
        let forward = Bag::from_values(values.clone());
        let mut reversed_values = values;
        reversed_values.reverse();
        let reversed = Bag::from_values(reversed_values);
        assert_eq!(forward, reversed);
    }
}

/// The unconstrained NIP (all `?`) matches every tuple, and an exact-value
/// NIP matches exactly that value.
#[test]
fn nip_matching_extremes() {
    let mut rng = StdRng::seed_from_u64(0x6e69_706d);
    for _ in 0..CASES {
        let t = flat_tuple(&mut rng);
        let other = flat_tuple(&mut rng);
        let any = Nip::tuple([("a", Nip::Any), ("b", Nip::Any)]);
        assert!(any.matches(&t));
        let exact = Nip::Value(t.clone());
        assert!(exact.matches(&t));
        assert_eq!(exact.matches(&other), t == other);
    }
}

/// `{{ e, * }}` (bag-containing) matches iff some element matches `e`,
/// and matching implies compatibility.
#[test]
fn bag_containing_matches_iff_element_matches() {
    let mut rng = StdRng::seed_from_u64(0x6261_676e);
    for _ in 0..CASES {
        let bag = small_bag(&mut rng);
        let needle = flat_tuple(&mut rng);
        let nip = Nip::bag_containing(Nip::Value(needle.clone()));
        let value = Value::Bag(bag.clone());
        let expected = bag.iter().any(|(v, _)| v == &needle);
        assert_eq!(nip.matches(&value), expected);
        if nip.matches(&value) {
            assert!(nip.compatible(&value));
        }
    }
}

/// The tree distance is a pseudo-metric on the values we generate:
/// identity, symmetry, and the triangle inequality hold.
#[test]
fn tree_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0x7472_6565);
    for _ in 0..CASES {
        let a = flat_tuple(&mut rng);
        let b = flat_tuple(&mut rng);
        let c = flat_tuple(&mut rng);
        assert_eq!(tree_distance(&a, &a), 0);
        assert_eq!(tree_distance(&a, &b), tree_distance(&b, &a));
        assert!(tree_distance(&a, &c) <= tree_distance(&a, &b) + tree_distance(&b, &c));
        if a == b {
            assert_eq!(tree_distance(&a, &b), 0);
        }
    }
}
