//! Property-based tests for the nested data model: bag algebra laws, NIP
//! matching invariants, and tree-edit-distance metric properties.

use nested_data::{tree_distance, Bag, Nip, Value};
use proptest::prelude::*;

/// A strategy for small primitive values.
fn primitive() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        "[a-c]{0,3}".prop_map(Value::str),
    ]
}

/// A strategy for flat tuples over a fixed small schema.
fn flat_tuple() -> impl Strategy<Value = Value> {
    (primitive(), primitive()).prop_map(|(a, b)| Value::tuple([("a", a), ("b", b)]))
}

/// A strategy for small bags of flat tuples.
fn small_bag() -> impl Strategy<Value = Bag> {
    prop::collection::vec(flat_tuple(), 0..6).prop_map(Bag::from_values)
}

proptest! {
    /// Bag union is commutative and its totals add up.
    #[test]
    fn bag_union_commutative(a in small_bag(), b in small_bag()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).total(), a.total() + b.total());
    }

    /// Bag difference never yields negative multiplicities and is bounded by
    /// the left operand.
    #[test]
    fn bag_difference_bounded(a in small_bag(), b in small_bag()) {
        let d = a.difference(&b);
        prop_assert!(d.total() <= a.total());
        for (v, m) in d.iter() {
            prop_assert!(*m <= a.mult(v));
        }
        // a = (a − b) ∪ (a ∩ b) in terms of totals.
        let kept: u64 = a.iter().map(|(v, m)| (*m).min(b.mult(v))).sum();
        prop_assert_eq!(d.total() + kept, a.total());
    }

    /// Deduplication keeps exactly the distinct values with multiplicity one.
    #[test]
    fn dedup_is_idempotent(a in small_bag()) {
        let d = a.dedup();
        prop_assert_eq!(d.total() as usize, a.distinct());
        prop_assert_eq!(d.dedup(), d);
    }

    /// Bag equality is insensitive to insertion order.
    #[test]
    fn bag_equality_order_insensitive(values in prop::collection::vec(flat_tuple(), 0..6)) {
        let forward = Bag::from_values(values.clone());
        let mut reversed_values = values;
        reversed_values.reverse();
        let reversed = Bag::from_values(reversed_values);
        prop_assert_eq!(forward, reversed);
    }

    /// The unconstrained NIP (all `?`) matches every tuple, and an exact-value
    /// NIP matches exactly that value.
    #[test]
    fn nip_matching_extremes(t in flat_tuple(), other in flat_tuple()) {
        let any = Nip::tuple([("a", Nip::Any), ("b", Nip::Any)]);
        prop_assert!(any.matches(&t));
        let exact = Nip::Value(t.clone());
        prop_assert!(exact.matches(&t));
        prop_assert_eq!(exact.matches(&other), t == other);
    }

    /// `{{ e, * }}` (bag-containing) matches iff some element matches `e`,
    /// and matching implies compatibility.
    #[test]
    fn bag_containing_matches_iff_element_matches(bag in small_bag(), needle in flat_tuple()) {
        let nip = Nip::bag_containing(Nip::Value(needle.clone()));
        let value = Value::Bag(bag.clone());
        let expected = bag.iter().any(|(v, _)| v == &needle);
        prop_assert_eq!(nip.matches(&value), expected);
        if nip.matches(&value) {
            prop_assert!(nip.compatible(&value));
        }
    }

    /// The tree distance is a pseudo-metric on the values we generate:
    /// identity, symmetry, and the triangle inequality hold.
    #[test]
    fn tree_distance_is_a_metric(a in flat_tuple(), b in flat_tuple(), c in flat_tuple()) {
        prop_assert_eq!(tree_distance(&a, &a), 0);
        prop_assert_eq!(tree_distance(&a, &b), tree_distance(&b, &a));
        prop_assert!(tree_distance(&a, &c) <= tree_distance(&a, &b) + tree_distance(&b, &c));
        if a == b {
            prop_assert_eq!(tree_distance(&a, &b), 0);
        }
    }
}
