//! Property-style tests for the nested data model: bag algebra laws, NIP
//! matching invariants, and tree-edit-distance metric properties.
//!
//! Inputs are generated with the workspace's deterministic PRNG instead of
//! `proptest` (hermetic builds have no external crates); each property is
//! checked over a few hundred seeded random cases.

use nested_data::{tree_distance, Bag, Nip, Value};
use whynot_rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 200;

/// A small primitive value.
fn primitive(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-50i64..50)),
        _ => {
            let len = rng.gen_range(0..=3usize);
            let s: String = (0..len).map(|_| *rng.choose(&['a', 'b', 'c'])).collect();
            Value::str(s)
        }
    }
}

/// A flat tuple over a fixed small schema.
fn flat_tuple(rng: &mut StdRng) -> Value {
    Value::tuple([("a", primitive(rng)), ("b", primitive(rng))])
}

/// A small bag of flat tuples.
fn small_bag(rng: &mut StdRng) -> Bag {
    let n = rng.gen_range(0..6usize);
    Bag::from_values((0..n).map(|_| flat_tuple(rng)))
}

/// Bag union is commutative and its totals add up.
#[test]
fn bag_union_commutative() {
    let mut rng = StdRng::seed_from_u64(0x6261_6775);
    for _ in 0..CASES {
        let a = small_bag(&mut rng);
        let b = small_bag(&mut rng);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).total(), a.total() + b.total());
    }
}

/// Bag difference never yields negative multiplicities and is bounded by
/// the left operand.
#[test]
fn bag_difference_bounded() {
    let mut rng = StdRng::seed_from_u64(0x6261_6764);
    for _ in 0..CASES {
        let a = small_bag(&mut rng);
        let b = small_bag(&mut rng);
        let d = a.difference(&b);
        assert!(d.total() <= a.total());
        for (v, m) in d.iter() {
            assert!(*m <= a.mult(v));
        }
        // a = (a − b) ∪ (a ∩ b) in terms of totals.
        let kept: u64 = a.iter().map(|(v, m)| (*m).min(b.mult(v))).sum();
        assert_eq!(d.total() + kept, a.total());
    }
}

/// Deduplication keeps exactly the distinct values with multiplicity one.
#[test]
fn dedup_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x6465_6475);
    for _ in 0..CASES {
        let a = small_bag(&mut rng);
        let d = a.dedup();
        assert_eq!(d.total() as usize, a.distinct());
        assert_eq!(d.dedup(), d);
    }
}

/// Bag equality is insensitive to insertion order.
#[test]
fn bag_equality_order_insensitive() {
    let mut rng = StdRng::seed_from_u64(0x6f72_6465);
    for _ in 0..CASES {
        let n = rng.gen_range(0..6usize);
        let values: Vec<Value> = (0..n).map(|_| flat_tuple(&mut rng)).collect();
        let forward = Bag::from_values(values.clone());
        let mut reversed_values = values;
        reversed_values.reverse();
        let reversed = Bag::from_values(reversed_values);
        assert_eq!(forward, reversed);
    }
}

/// The unconstrained NIP (all `?`) matches every tuple, and an exact-value
/// NIP matches exactly that value.
#[test]
fn nip_matching_extremes() {
    let mut rng = StdRng::seed_from_u64(0x6e69_706d);
    for _ in 0..CASES {
        let t = flat_tuple(&mut rng);
        let other = flat_tuple(&mut rng);
        let any = Nip::tuple([("a", Nip::Any), ("b", Nip::Any)]);
        assert!(any.matches(&t));
        let exact = Nip::Value(t.clone());
        assert!(exact.matches(&t));
        assert_eq!(exact.matches(&other), t == other);
    }
}

/// `{{ e, * }}` (bag-containing) matches iff some element matches `e`,
/// and matching implies compatibility.
#[test]
fn bag_containing_matches_iff_element_matches() {
    let mut rng = StdRng::seed_from_u64(0x6261_676e);
    for _ in 0..CASES {
        let bag = small_bag(&mut rng);
        let needle = flat_tuple(&mut rng);
        let nip = Nip::bag_containing(Nip::Value(needle.clone()));
        let value = Value::from_bag(bag.clone());
        let expected = bag.iter().any(|(v, _)| v == &needle);
        assert_eq!(nip.matches(&value), expected);
        if nip.matches(&value) {
            assert!(nip.compatible(&value));
        }
    }
}

/// The tree distance is a pseudo-metric on the values we generate:
/// identity, symmetry, and the triangle inequality hold.
#[test]
fn tree_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0x7472_6565);
    for _ in 0..CASES {
        let a = flat_tuple(&mut rng);
        let b = flat_tuple(&mut rng);
        let c = flat_tuple(&mut rng);
        assert_eq!(tree_distance(&a, &a), 0);
        assert_eq!(tree_distance(&a, &b), tree_distance(&b, &a));
        assert!(tree_distance(&a, &c) <= tree_distance(&a, &b) + tree_distance(&b, &c));
        if a == b {
            assert_eq!(tree_distance(&a, &b), 0);
        }
    }
}

/// A tuple over a wider schema with the fields supplied in random order,
/// exercising the name-based (order-insensitive) equivalence classes.
fn shuffled_tuple(rng: &mut StdRng) -> (Value, Value) {
    let fields: Vec<(&str, Value)> = vec![
        ("delta", primitive(rng)),
        ("alpha", primitive(rng)),
        ("charlie", primitive(rng)),
        ("bravo", primitive(rng)),
    ];
    let mut shuffled = fields.clone();
    // Fisher–Yates with the deterministic PRNG.
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    (Value::tuple(fields), Value::tuple(shuffled))
}

/// Interning preserves name-based `Eq`/`Ord`/`Hash` for tuples: two tuples
/// with the same name→value mapping are equal with equal hashes regardless of
/// field order, and the order between random tuples agrees with comparing
/// their name-sorted `(name as string, value)` pairs — the reference semantics
/// of the previous `String`-keyed representation.
#[test]
fn interned_tuples_are_observation_equivalent_to_string_tuples() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let hash_of = |v: &Value| {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    };
    let reference_key = |v: &Value| -> Vec<(String, Value)> {
        let mut fields: Vec<(String, Value)> = v
            .as_tuple()
            .unwrap()
            .fields()
            .iter()
            .map(|(n, val)| (n.as_str().to_string(), val.clone()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields
    };
    let mut rng = StdRng::seed_from_u64(0x7379_6d65);
    for _ in 0..CASES {
        let (a, a_shuffled) = shuffled_tuple(&mut rng);
        let (b, _) = shuffled_tuple(&mut rng);
        // Field order is irrelevant for equality and hashing.
        assert_eq!(a, a_shuffled);
        assert_eq!(hash_of(&a), hash_of(&a_shuffled));
        // The total order matches the string-keyed reference order.
        let reference = reference_key(&a).cmp(&reference_key(&b));
        assert_eq!(a.cmp(&b), reference, "a={a} b={b}");
        assert_eq!(b.cmp(&a), reference.reverse());
    }
}

/// `BagBuilder::finish` produces the identical canonical entry sequence as
/// repeated `Bag::insert`, including merged multiplicities.
#[test]
fn bag_builder_is_equivalent_to_repeated_insert() {
    use nested_data::BagBuilder;
    let mut rng = StdRng::seed_from_u64(0x6275_696c);
    for _ in 0..CASES {
        let n = rng.gen_range(0..20usize);
        let entries: Vec<(Value, u64)> = (0..n)
            .map(|_| {
                let v = if rng.gen_bool(0.3) { primitive(&mut rng) } else { flat_tuple(&mut rng) };
                (v, rng.gen_range(0..3u64))
            })
            .collect();
        let mut via_insert = Bag::new();
        for (v, m) in &entries {
            via_insert.insert(v.clone(), *m);
        }
        let mut builder = BagBuilder::new();
        for (v, m) in &entries {
            builder.add(v.clone(), *m);
        }
        let via_builder = builder.finish();
        assert_eq!(via_builder, via_insert);
        // Entry *order* is identical, not just multiset equality.
        assert_eq!(via_builder.into_entries(), via_insert.into_entries());
    }
}

/// Structural sharing is semantically invisible: a value cloned (shared) many
/// times compares, hashes, and renders exactly like an independently rebuilt
/// deep copy.
#[test]
fn shared_values_are_indistinguishable_from_deep_copies() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut rng = StdRng::seed_from_u64(0x7368_6172);
    for _ in 0..CASES {
        let inner = flat_tuple(&mut rng);
        // Shared: the same Arc twice. Rebuilt: structurally equal deep copies.
        let shared = Value::bag([inner.clone(), inner.clone()]);
        let rebuilt = Value::bag([
            Value::tuple(inner.as_tuple().unwrap().fields().iter().map(|(n, v)| (*n, v.clone()))),
            Value::tuple(inner.as_tuple().unwrap().fields().iter().map(|(n, v)| (*n, v.clone()))),
        ]);
        assert_eq!(shared, rebuilt);
        assert_eq!(shared.cmp(&rebuilt), std::cmp::Ordering::Equal);
        let hash_of = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of(&shared), hash_of(&rebuilt));
        assert_eq!(shared.to_string(), rebuilt.to_string());
        assert_eq!(shared.node_count(), rebuilt.node_count());
    }
}

/// A wide flat tuple over a fixed schema of `arity` scalar attributes.
fn wide_flat_tuple(rng: &mut StdRng, arity: usize) -> Value {
    Value::tuple((0..arity).map(|c| (format!("w{c}"), primitive(rng))))
}

/// A bag of wide flat tuples, sized to clear the columnar eligibility bar.
fn wide_flat_bag(rng: &mut StdRng) -> Bag {
    use nested_data::columnar::{MIN_COLUMNAR_ARITY, MIN_COLUMNAR_ROWS};
    let rows = MIN_COLUMNAR_ROWS + rng.gen_range(0..32usize);
    let arity = MIN_COLUMNAR_ARITY + rng.gen_range(0..4usize);
    Bag::from_entries((0..rows).map(|_| (wide_flat_tuple(rng, arity), rng.gen_range(1u64..4))))
}

/// The columnar decomposition of a wide flat bag reconstructs every row —
/// value for value, multiplicity for multiplicity, in canonical entry order.
#[test]
fn columnar_roundtrips_wide_flat_bags() {
    let mut rng = StdRng::seed_from_u64(0x636f_6c72);
    for _ in 0..CASES {
        let bag = wide_flat_bag(&mut rng);
        let cols = bag.columnar().expect("wide flat bag must be columnar");
        assert_eq!(cols.rows(), bag.distinct());
        for (r, (value, mult)) in bag.iter().enumerate() {
            assert_eq!(&Value::from_tuple(cols.row_tuple(r)), value);
            assert_eq!(cols.mults()[r], *mult);
        }
        // Column lookups agree with per-row field lookups, and typed columns
        // reconstruct the exact `Value` variant (never a widened one).
        for sym in cols.syms() {
            let column = cols.column(*sym).unwrap();
            for (r, (value, _)) in bag.iter().enumerate() {
                let field = value.as_tuple().unwrap().get(*sym).unwrap();
                let reconstructed = column.value(r);
                assert_eq!(&reconstructed, field);
                assert_eq!(reconstructed.kind(), field.kind(), "variant must round-trip exactly");
            }
        }
    }
}

/// Bags with any nested (non-scalar) field value never take the columnar
/// path, no matter how wide and long they are.
#[test]
fn nested_bags_never_columnarize() {
    use nested_data::columnar::{MIN_COLUMNAR_ARITY, MIN_COLUMNAR_ROWS};
    use nested_data::ColumnarBag;
    let mut rng = StdRng::seed_from_u64(0x6e65_7374);
    for _ in 0..CASES {
        let rows = MIN_COLUMNAR_ROWS + rng.gen_range(0..8usize);
        let nested_at = rng.gen_range(0..MIN_COLUMNAR_ARITY);
        let mut values = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut fields = Vec::with_capacity(MIN_COLUMNAR_ARITY);
            for c in 0..MIN_COLUMNAR_ARITY {
                let value = if c == nested_at {
                    // A nested relation or tuple value poisons the column.
                    let inner = flat_tuple(&mut rng);
                    if rng.gen_bool(0.5) {
                        Value::bag([inner])
                    } else {
                        inner
                    }
                } else {
                    primitive(&mut rng)
                };
                fields.push((format!("w{c}"), value));
            }
            values.push(Value::tuple(fields));
        }
        let bag = Bag::from_values(values);
        assert!(bag.columnar().is_none(), "nested bag must stay row-oriented");
        assert!(ColumnarBag::from_flat_bag(&bag).is_none());
    }
}

/// Disabling the columnar path is invisible to bag semantics: the same bag
/// compares equal, and the toggle round-trips.
#[test]
fn columnar_toggle_does_not_change_semantics() {
    use nested_data::with_columnar;
    let mut rng = StdRng::seed_from_u64(0x746f_6767);
    for _ in 0..50 {
        let bag = wide_flat_bag(&mut rng);
        let filtered_on = bag.filter(|v| v.as_tuple().unwrap().get("w0").is_some());
        let filtered_off =
            with_columnar(false, || bag.filter(|v| v.as_tuple().unwrap().get("w0").is_some()));
        assert_eq!(filtered_on, filtered_off);
        assert_eq!(filtered_on.into_entries(), filtered_off.into_entries());
        with_columnar(false, || assert!(bag.columnar().is_none()));
        assert!(bag.columnar().is_some());
    }
}
