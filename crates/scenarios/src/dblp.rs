//! DBLP scenarios D1–D5 (Tables 4 and 10).

use std::collections::BTreeMap;

use nested_data::{Nip, NipCmp};
use nested_datagen::dblp::{dblp_database, planted, DblpConfig};
use nrab_algebra::expr::{CmpOp, Expr};
use nrab_algebra::{AggFunc, Database, JoinKind, PlanBuilder, ProjColumn};
use whynot_core::AttributeAlternative;

use crate::Scenario;

fn database(scale: usize) -> Database {
    dblp_database(DblpConfig { scale, seed: 7 })
}

/// All DBLP scenarios at the given scale.
pub fn all_dblp(scale: usize) -> Vec<Scenario> {
    vec![d1(scale), d2(scale), d3(scale), d4(scale), d5(scale)]
}

/// D1: all authors and titles of papers published in SIGMOD proceedings.
/// The selection compares the *written-out* proceedings title against the
/// acronym, and the projection picked `title` instead of `booktitle`.
pub fn d1(scale: usize) -> Scenario {
    // Left: inproceedings with authors, own title, and crossref key.
    let left = PlanBuilder::table("inproceedings")
        .inner_flatten("crossref", None)
        .inner_flatten("author", None)
        .tuple_flatten("title.text", Some("ititle"))
        .project_attrs(&["name", "ititle", "ref_key"]);
    // Right: proceedings projected to key and (erroneously) title.
    let right = PlanBuilder::table("proceedings")
        .project(vec![ProjColumn::passthrough("key"), ProjColumn::renamed("ptitle", "title")]);
    let pi1 = right.current_id();
    let builder = left.join(
        right,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("ref_key"), CmpOp::Eq, Expr::attr("key")),
    );
    let builder = builder.select(Expr::attr_eq("ptitle", planted::D1_BOOKTITLE));
    let sigma2 = builder.current_id();
    let builder = builder.project_attrs(&["name", "ititle", "ptitle"]);
    let plan = builder.build().expect("D1 plan");
    // The right-hand projection's id shifted when the two chains were merged:
    // recover it from the built plan (it is the only projection over `proceedings`).
    let pi1 = plan
        .nodes_top_down()
        .iter()
        .find(|n| {
            matches!(&n.op, nrab_algebra::Operator::Projection { columns }
                if columns.iter().any(|c| c.name == "ptitle"))
        })
        .map(|n| n.id)
        .unwrap_or(pi1);

    Scenario {
        name: "D1".into(),
        description: "All authors and titles of papers published at SIGMOD".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("name", Nip::Any),
            ("ititle", Nip::val(planted::D1_PAPER)),
            ("ptitle", Nip::Any),
        ]),
        alternatives: vec![AttributeAlternative::new("proceedings", "title", "booktitle")],
        labels: BTreeMap::from([("π1".to_string(), pi1), ("σ2".to_string(), sigma2)]),
        paper_rp: vec![vec!["σ2".into()], vec!["π1".into()]],
        paper_wnpp: vec![vec!["σ2".into()]],
        gold: None,
    }
}

/// D2: number of articles for authors who do not have "Dey" in their name.
/// The tuple flatten picked `title.bibtex` (null for almost every record), so
/// the planted author's article count collapses to zero.
pub fn d2(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("authored").inner_flatten("author", None);
    let builder = builder.tuple_flatten("title.bibtex", Some("paper_title"));
    let ft3 = builder.current_id();
    let builder = builder
        .project_attrs(&["name", "paper_title"])
        .select(Expr::not(Expr::contains(Expr::attr("name"), Expr::lit("Dey"))));
    let sigma = builder.current_id();
    let builder = builder.relation_nest(vec!["paper_title"], "ctitle");
    let nest = builder.current_id();
    let builder = builder.nest_aggregate(AggFunc::Count, "ctitle", None, "cnt");
    let gamma = builder.current_id();
    let plan = builder.build().expect("D2 plan");

    Scenario {
        name: "D2".into(),
        description: "Number of articles for authors without \"Dey\" in their name".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("name", Nip::val(planted::D2_AUTHOR)),
            ("ctitle", Nip::Any),
            ("cnt", Nip::pred(NipCmp::Ge, 5i64)),
        ]),
        alternatives: vec![AttributeAlternative::new("authored", "title.bibtex", "title.text")],
        labels: BTreeMap::from([
            ("F3".to_string(), ft3),
            ("σ".to_string(), sigma),
            ("N".to_string(), nest),
            ("γ".to_string(), gamma),
        ]),
        paper_rp: vec![vec!["F3".into()]],
        paper_wnpp: vec![],
        gold: None,
    }
}

/// D3: all author-paper pairs per booktitle and year; the query nests the
/// `author` attribute although the expected person only appears as `editor`.
pub fn d3(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("records").tuple_nest(vec!["author", "title"], "authorPaper");
    let nt4 = builder.current_id();
    let builder = builder
        .project_attrs(&["booktitle", "year", "authorPaper"])
        .relation_nest(vec!["authorPaper"], "aplist");
    let plan = builder.build().expect("D3 plan");

    Scenario {
        name: "D3".into(),
        description: "All author-paper pairs per booktitle and year".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("booktitle", Nip::val(planted::D3_BOOKTITLE)),
            ("year", Nip::val(nested_data::Value::int(planted::D3_YEAR))),
            (
                "aplist",
                Nip::bag([
                    Nip::tuple([(
                        "authorPaper",
                        Nip::tuple([("author", Nip::val(planted::D3_EDITOR)), ("title", Nip::Any)]),
                    )]),
                    Nip::Star,
                ]),
            ),
        ]),
        alternatives: vec![AttributeAlternative::new("records", "author", "editor")],
        labels: BTreeMap::from([("N4".to_string(), nt4)]),
        paper_rp: vec![vec!["N4".into()]],
        paper_wnpp: vec![],
        gold: None,
    }
}

/// D4: collection of papers per author who published through ACM after 2010.
/// The flatten picked `publisher` instead of `series` and the year selection
/// filters on 2015 instead of 2010.
pub fn d4(scale: usize) -> Scenario {
    // Right: proceedings with the publisher value pulled up.
    let right =
        PlanBuilder::table("proceedings").tuple_flatten("publisher.value", Some("ppublisher"));
    let ft5_local = right.current_id();
    let right = right.project_attrs(&["key", "year", "ppublisher"]);
    // Left: inproceedings with crossref and author flattened.
    let left = PlanBuilder::table("inproceedings")
        .inner_flatten("crossref", None)
        .inner_flatten("author", None)
        .tuple_flatten("title.text", Some("ititle"))
        .project_attrs(&["ref_key", "name", "ititle"]);
    let builder = left.join(
        right,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("ref_key"), CmpOp::Eq, Expr::attr("key")),
    );
    let builder = builder.select(Expr::attr_eq("ppublisher", "ACM"));
    let sigma6 = builder.current_id();
    let builder = builder.select(Expr::attr_eq("year", 2015i64));
    let sigma7 = builder.current_id();
    let builder = builder
        .project_attrs(&["name", "ititle"])
        .relation_nest(vec!["ititle"], "tlist")
        .nest_aggregate(AggFunc::Count, "tlist", None, "cnt");
    let plan = builder.build().expect("D4 plan");
    let ft5 = plan
        .nodes_top_down()
        .iter()
        .find(|n| matches!(&n.op, nrab_algebra::Operator::TupleFlatten { alias: Some(a), .. } if a == "ppublisher"))
        .map(|n| n.id)
        .unwrap_or(ft5_local);

    Scenario {
        name: "D4".into(),
        description: "Papers per author published through ACM after 2010".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("name", Nip::val(planted::D4_AUTHOR)),
            ("tlist", Nip::Any),
            ("cnt", Nip::pred(NipCmp::Ge, 1i64)),
        ]),
        alternatives: vec![AttributeAlternative::new("proceedings", "publisher", "series")],
        labels: BTreeMap::from([
            ("F5".to_string(), ft5),
            ("σ6".to_string(), sigma6),
            ("σ7".to_string(), sigma7),
        ]),
        paper_rp: vec![
            vec!["σ6".into()],
            vec!["σ6".into(), "σ7".into()],
            vec!["F5".into(), "σ7".into()],
            vec!["F5".into(), "σ6".into(), "σ7".into()],
        ],
        paper_wnpp: vec![vec!["σ6".into()]],
        gold: None,
    }
}

/// D5: list of homepage URLs per author; the URLs are stored in `note` and the
/// planted author's `url` collection is empty.
pub fn d5(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("homepages").project_attrs(&["author", "url"]);
    let pi8 = builder.current_id();
    let builder = builder.inner_flatten("author", None);
    let builder = builder.inner_flatten("url", Some("the_url"));
    let fi9 = builder.current_id();
    let builder = builder
        .tuple_flatten("the_url.value", Some("homepage"))
        .project_attrs(&["name", "homepage"])
        .relation_nest(vec!["homepage"], "lurl");
    let plan = builder.build().expect("D5 plan");

    Scenario {
        name: "D5".into(),
        description: "List of homepage URLs for each author".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([("name", Nip::val(planted::D5_AUTHOR)), ("lurl", Nip::Any)]),
        alternatives: vec![AttributeAlternative::new("homepages", "url", "note")],
        labels: BTreeMap::from([("π8".to_string(), pi8), ("F9".to_string(), fi9)]),
        paper_rp: vec![vec!["F9".into()], vec!["π8".into()]],
        paper_wnpp: vec![vec!["F9".into()]],
        gold: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_scenarios_build_and_validate() {
        for scenario in all_dblp(40) {
            scenario.question().validate().unwrap_or_else(|e| {
                panic!("scenario {} has an invalid question: {e}", scenario.name)
            });
        }
    }
}
