//! Nested TPC-H scenarios Q1, Q3, Q4, Q6, Q10, Q13 (Table 9) and their flat
//! variants Q1F–Q13F.
//!
//! Each scenario injects the parameter errors the paper describes (shown in
//! blue in Table 9); the unmodified query serves as the gold standard, so the
//! gold explanation is exactly the set of modified operators.

use std::collections::BTreeMap;

use nested_data::{Nip, NipCmp, Value};
use nested_datagen::tpch::{planted, tpch_flat_database, tpch_nested_database, TpchConfig};
use nrab_algebra::expr::{ArithOp, CmpOp, Expr};
use nrab_algebra::{evaluate, AggFunc, AggSpec, Database, JoinKind, PlanBuilder, ProjColumn};
use whynot_core::AttributeAlternative;

use crate::Scenario;

fn database(scale: usize, flat: bool) -> Database {
    let config = TpchConfig { customers: scale, seed: 42 };
    if flat {
        tpch_flat_database(config)
    } else {
        tpch_nested_database(config)
    }
}

/// The attribute-alternative sets the paper defines for TPC-H (Section 6.2).
fn tpch_alternatives(table: &str) -> Vec<AttributeAlternative> {
    vec![
        AttributeAlternative::new(table, "l_discount", "l_tax"),
        AttributeAlternative::new(table, "l_tax", "l_discount"),
        AttributeAlternative::new(table, "l_shipdate", "l_commitdate"),
        AttributeAlternative::new(table, "l_commitdate", "l_shipdate"),
        AttributeAlternative::new(table, "o_shippriority", "o_orderpriority"),
        AttributeAlternative::new(table, "o_orderpriority", "o_shippriority"),
    ]
}

/// Starts a lineitem-level plan: the flattened nested orders, or the flat
/// pre-joined relation.
fn lineitems(flat: bool) -> (PlanBuilder, Option<u32>) {
    if flat {
        (PlanBuilder::table("flatlineitem"), None)
    } else {
        let builder = PlanBuilder::table("nestedOrders").inner_flatten("o_lineitems", None);
        let flatten = builder.current_id();
        (builder, Some(flatten))
    }
}

/// All TPC-H scenarios (nested and flat) at the given scale.
pub fn all_tpch(scale: usize) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for flat in [false, true] {
        scenarios.push(q1(scale, flat));
        scenarios.push(q3(scale, flat));
        scenarios.push(q4(scale, flat));
        scenarios.push(q6(scale, flat));
        scenarios.push(q10(scale, flat));
        scenarios.push(q13(scale, flat));
    }
    scenarios
}

fn name(base: &str, flat: bool) -> String {
    if flat {
        format!("{base}F")
    } else {
        base.to_string()
    }
}

/// Q1: sum over the lineitems shipped before 1998-09-02 — but the aggregation
/// erroneously sums `l_tax` instead of `l_discount`.
pub fn q1(scale: usize, flat: bool) -> Scenario {
    let db = database(scale, flat);
    let (builder, _) = lineitems(flat);
    let builder = builder.select(Expr::attr_cmp("l_shipdate", CmpOp::Le, "1998-09-02"));
    let sigma24 = builder.current_id();
    let builder = builder
        .group_aggregate(vec![], vec![AggSpec::new(AggFunc::Sum, Expr::attr("l_tax"), "avgDisc")]);
    let gamma23 = builder.current_id();
    let plan = builder.build().expect("Q1 plan");
    // Ask for an accumulated discount larger than what the erroneous query returns.
    let current = evaluate(&plan, &db)
        .ok()
        .and_then(|bag| {
            bag.iter().next().and_then(|(v, _)| {
                v.as_tuple().and_then(|t| t.get("avgDisc").and_then(Value::as_float))
            })
        })
        .unwrap_or(0.0);

    Scenario {
        name: name("Q1", flat),
        description: "TPC-H query 1 with one modified aggregation".into(),
        db,
        plan,
        why_not: Nip::tuple([("avgDisc", Nip::pred(NipCmp::Gt, Value::Float(current)))]),
        alternatives: tpch_alternatives(if flat { "flatlineitem" } else { "nestedOrders" }),
        labels: BTreeMap::from([("σ24".to_string(), sigma24), ("γ23".to_string(), gamma23)]),
        paper_rp: vec![vec!["σ24".into()], vec!["γ23".into()], vec!["γ23".into(), "σ24".into()]],
        paper_wnpp: vec![vec!["σ24".into()]],
        gold: Some(vec!["γ23".into()]),
    }
}

/// Q3: unshipped orders — the market segment constant and the commit-date
/// constant were both modified.
pub fn q3(scale: usize, flat: bool) -> Scenario {
    let db = database(scale, flat);
    let (orders, _) = lineitems(flat);
    let builder = PlanBuilder::table("customer").join(
        orders,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("c_custkey"), CmpOp::Eq, Expr::attr("o_custkey")),
    );
    let builder = builder.select(Expr::attr_cmp("l_commitdate", CmpOp::Gt, "1995-03-25"));
    let sigma27 = builder.current_id();
    let builder = builder.select(Expr::attr_cmp("o_orderdate", CmpOp::Lt, "1995-03-15"));
    let builder = builder.select(Expr::attr_eq("c_mktsegment", "HOUSEHOLD"));
    let sigma26 = builder.current_id();
    let builder = builder.project(vec![
        ProjColumn::passthrough("o_orderkey"),
        ProjColumn::passthrough("o_orderdate"),
        ProjColumn::passthrough("o_shippriority"),
        ProjColumn::computed(
            "disc_price",
            Expr::arith(
                Expr::attr("l_extendedprice"),
                ArithOp::Mul,
                Expr::arith(Expr::lit(1.0), ArithOp::Sub, Expr::attr("l_discount")),
            ),
        ),
    ]);
    let builder = builder.group_aggregate(
        vec!["o_orderkey", "o_orderdate", "o_shippriority"],
        vec![AggSpec::new(AggFunc::Sum, Expr::attr("disc_price"), "revenue")],
    );
    let gamma25 = builder.current_id();
    let plan = builder.build().expect("Q3 plan");

    Scenario {
        name: name("Q3", flat),
        description: "TPC-H query 3 with two modified selections".into(),
        db,
        plan,
        why_not: Nip::tuple([
            ("o_orderkey", Nip::val(Value::int(planted::Q3_ORDERKEY))),
            ("o_orderdate", Nip::Any),
            ("o_shippriority", Nip::Any),
            ("revenue", Nip::Any),
        ]),
        alternatives: tpch_alternatives(if flat { "flatlineitem" } else { "nestedOrders" }),
        labels: BTreeMap::from([
            ("σ26".to_string(), sigma26),
            ("σ27".to_string(), sigma27),
            ("γ25".to_string(), gamma25),
        ]),
        paper_rp: vec![
            vec!["σ26".into(), "σ27".into()],
            vec!["σ26".into(), "σ27".into(), "γ25".into()],
        ],
        paper_wnpp: vec![vec!["σ27".into()]],
        gold: Some(vec!["σ26".into(), "σ27".into()]),
    }
}

/// Q4: order counts per priority — the query groups on the ship priority
/// instead of the order priority and filters ship dates instead of commit
/// dates.
pub fn q4(scale: usize, flat: bool) -> Scenario {
    let db = database(scale, flat);
    let (builder, _) = lineitems(flat);
    let builder =
        builder.select(Expr::cmp(Expr::attr("l_shipdate"), CmpOp::Lt, Expr::attr("l_receiptdate")));
    let sigma28 = builder.current_id();
    let builder = builder.select(Expr::and(
        Expr::attr_cmp("o_orderdate", CmpOp::Ge, "1993-07-01"),
        Expr::attr_cmp("o_orderdate", CmpOp::Le, "1993-09-30"),
    ));
    let sigma29 = builder.current_id();
    let builder = builder.group_aggregate(
        vec!["o_shippriority"],
        vec![AggSpec::new(AggFunc::Count, Expr::attr("o_orderkey"), "order_count")],
    );
    let gamma30 = builder.current_id();
    let plan = builder.build().expect("Q4 plan");

    Scenario {
        name: name("Q4", flat),
        description: "TPC-H query 4 with a modified selection and aggregation".into(),
        db,
        plan,
        why_not: Nip::tuple([
            ("o_shippriority", Nip::val("3-MEDIUM")),
            ("order_count", Nip::pred(NipCmp::Lt, 11_000i64)),
        ]),
        alternatives: tpch_alternatives(if flat { "flatlineitem" } else { "nestedOrders" }),
        labels: BTreeMap::from([
            ("σ28".to_string(), sigma28),
            ("σ29".to_string(), sigma29),
            ("γ30".to_string(), gamma30),
        ]),
        paper_rp: vec![
            vec!["γ30".into()],
            vec!["γ30".into(), "σ29".into()],
            vec!["γ30".into(), "σ28".into()],
            vec!["γ30".into(), "σ29".into(), "σ28".into()],
        ],
        paper_wnpp: vec![],
        gold: Some(vec!["γ30".into(), "σ28".into()]),
    }
}

/// Q6: forecast revenue — the discount band selection erroneously filters on
/// `l_tax`.
pub fn q6(scale: usize, flat: bool) -> Scenario {
    let db = database(scale, flat);
    let (builder, _) = lineitems(flat);
    let builder = builder.select(Expr::attr_cmp("l_quantity", CmpOp::Lt, 24i64));
    let sigma34 = builder.current_id();
    let builder = builder.select(Expr::and(
        Expr::attr_cmp("l_tax", CmpOp::Ge, 0.05),
        Expr::attr_cmp("l_tax", CmpOp::Le, 0.07),
    ));
    let sigma33 = builder.current_id();
    let builder = builder.select(Expr::and(
        Expr::attr_cmp("l_shipdate", CmpOp::Ge, "1994-01-01"),
        Expr::attr_cmp("l_shipdate", CmpOp::Le, "1994-12-31"),
    ));
    let sigma32 = builder.current_id();
    let builder = builder.project(vec![ProjColumn::computed(
        "disc_price",
        Expr::arith(Expr::attr("l_extendedprice"), ArithOp::Mul, Expr::attr("l_discount")),
    )]);
    let pi31 = builder.current_id();
    let builder = builder.group_aggregate(
        vec![],
        vec![AggSpec::new(AggFunc::Sum, Expr::attr("disc_price"), "revenue")],
    );
    let plan = builder.build().expect("Q6 plan");
    let current = evaluate(&plan, &db)
        .ok()
        .and_then(|bag| {
            bag.iter().next().and_then(|(v, _)| {
                v.as_tuple().and_then(|t| t.get("revenue").and_then(Value::as_float))
            })
        })
        .unwrap_or(0.0);

    Scenario {
        name: name("Q6", flat),
        description: "TPC-H query 6 with one modified selection".into(),
        db,
        plan,
        why_not: Nip::tuple([("revenue", Nip::pred(NipCmp::Lt, Value::Float(current * 0.5)))]),
        alternatives: tpch_alternatives(if flat { "flatlineitem" } else { "nestedOrders" }),
        labels: BTreeMap::from([
            ("σ32".to_string(), sigma32),
            ("σ33".to_string(), sigma33),
            ("σ34".to_string(), sigma34),
            ("π31".to_string(), pi31),
        ]),
        paper_rp: vec![
            vec!["σ32".into()],
            vec!["σ33".into()],
            vec!["σ34".into()],
            vec!["σ32".into(), "σ33".into()],
            vec!["σ32".into(), "σ34".into()],
            vec!["σ33".into(), "σ34".into()],
            vec!["π31".into(), "σ33".into()],
            vec!["σ32".into(), "σ33".into(), "σ34".into()],
            vec!["π31".into(), "σ32".into(), "σ33".into()],
            vec!["π31".into(), "σ33".into(), "σ34".into()],
            vec!["π31".into(), "σ32".into(), "σ33".into(), "σ34".into()],
        ],
        paper_wnpp: vec![vec!["σ32".into()]],
        gold: Some(vec!["σ33".into()]),
    }
}

/// Q10: returned items and lost revenue — the return-flag constant, the order
/// date range, and the discount attribute in the revenue computation were all
/// modified.
pub fn q10(scale: usize, flat: bool) -> Scenario {
    let db = database(scale, flat);
    let (flat_ord, _) = lineitems(flat);
    let flat_ord = flat_ord.select(Expr::and(
        Expr::attr_cmp("o_orderdate", CmpOp::Ge, "1997-10-01"),
        Expr::attr_cmp("o_orderdate", CmpOp::Le, "1997-12-31"),
    ));
    let sigma36_local = flat_ord.current_id();
    let flat_ord = flat_ord.select(Expr::attr_eq("l_returnflag", "A"));
    let sigma35_local = flat_ord.current_id();

    let builder = PlanBuilder::table("customer").join(
        flat_ord,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("c_custkey"), CmpOp::Eq, Expr::attr("o_custkey")),
    );
    let join38 = builder.current_id();
    let builder = builder.join(
        PlanBuilder::table("nation"),
        JoinKind::Inner,
        Expr::cmp(Expr::attr("c_nationkey"), CmpOp::Eq, Expr::attr("n_nationkey")),
    );
    let builder = builder.project(vec![
        ProjColumn::passthrough("c_custkey"),
        ProjColumn::passthrough("c_name"),
        ProjColumn::passthrough("c_acctbal"),
        ProjColumn::passthrough("c_phone"),
        ProjColumn::passthrough("n_name"),
        ProjColumn::passthrough("c_address"),
        ProjColumn::passthrough("c_comment"),
        ProjColumn::computed(
            "disc_price",
            Expr::arith(
                Expr::attr("l_extendedprice"),
                ArithOp::Mul,
                Expr::arith(Expr::lit(1.0), ArithOp::Sub, Expr::attr("l_tax")),
            ),
        ),
    ]);
    let pi37 = builder.current_id();
    let builder = builder.group_aggregate(
        vec!["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"],
        vec![AggSpec::new(AggFunc::Sum, Expr::attr("disc_price"), "revenue")],
    );
    let plan = builder.build().expect("Q10 plan");
    // The selection ids were shifted when the chains merged; recover them.
    let sigma35 = plan
        .nodes_top_down()
        .iter()
        .find(|n| n.op.to_string().contains("l_returnflag"))
        .map(|n| n.id)
        .unwrap_or(sigma35_local);
    let sigma36 = plan
        .nodes_top_down()
        .iter()
        .find(|n| n.op.to_string().contains("o_orderdate"))
        .map(|n| n.id)
        .unwrap_or(sigma36_local);

    Scenario {
        name: name("Q10", flat),
        description: "TPC-H query 10 with two modified selections and a modified projection".into(),
        db,
        plan,
        why_not: Nip::tuple([
            ("c_custkey", Nip::val(Value::int(planted::Q10_CUSTKEY))),
            ("c_name", Nip::Any),
            ("c_acctbal", Nip::Any),
            ("c_phone", Nip::Any),
            ("n_name", Nip::Any),
            ("c_address", Nip::Any),
            ("c_comment", Nip::Any),
            ("revenue", Nip::pred(NipCmp::Gt, 0i64)),
        ]),
        alternatives: tpch_alternatives(if flat { "flatlineitem" } else { "nestedOrders" }),
        labels: BTreeMap::from([
            ("σ35".to_string(), sigma35),
            ("σ36".to_string(), sigma36),
            ("π37".to_string(), pi37),
            ("⋈38".to_string(), join38),
        ]),
        paper_rp: vec![
            vec!["σ35".into()],
            vec!["σ35".into(), "σ36".into()],
            vec!["σ35".into(), "π37".into()],
            vec!["σ35".into(), "σ36".into(), "π37".into()],
        ],
        paper_wnpp: vec![vec!["⋈38".into()]],
        gold: Some(vec!["σ35".into(), "σ36".into(), "π37".into()]),
    }
}

/// Q13: distribution of customers by order count — the query uses an inner
/// join instead of a left outer join and therefore misses customers without
/// orders.
pub fn q13(scale: usize, flat: bool) -> Scenario {
    let db = database(scale, flat);
    let orders =
        if flat { PlanBuilder::table("flatlineitem") } else { PlanBuilder::table("nestedOrders") };
    let builder = PlanBuilder::table("customer").join(
        orders,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("c_custkey"), CmpOp::Eq, Expr::attr("o_custkey")),
    );
    let join39 = builder.current_id();
    let builder = builder.select(Expr::and(
        Expr::not(Expr::contains(Expr::attr("o_comment"), Expr::lit("special"))),
        Expr::not(Expr::contains(Expr::attr("o_comment"), Expr::lit("requests"))),
    ));
    let builder = builder.group_aggregate(
        vec!["c_custkey"],
        vec![AggSpec::new(AggFunc::Count, Expr::attr("o_orderkey"), "c_count")],
    );
    let builder = builder.group_aggregate(
        vec!["c_count"],
        vec![AggSpec::new(AggFunc::Count, Expr::attr("c_custkey"), "custdist")],
    );
    let plan = builder.build().expect("Q13 plan");

    Scenario {
        name: name("Q13", flat),
        description: "TPC-H query 13 with one modified join".into(),
        db,
        plan,
        why_not: Nip::tuple([("c_count", Nip::val(Value::int(0))), ("custdist", Nip::Any)]),
        alternatives: tpch_alternatives(if flat { "flatlineitem" } else { "nestedOrders" }),
        labels: BTreeMap::from([("⋈39".to_string(), join39)]),
        paper_rp: vec![vec!["⋈39".into()]],
        paper_wnpp: vec![vec!["⋈39".into()]],
        gold: Some(vec!["⋈39".into()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_scenarios_build_and_validate() {
        for scenario in all_tpch(20) {
            scenario.question().validate().unwrap_or_else(|e| {
                panic!("scenario {} has an invalid question: {e}", scenario.name)
            });
        }
    }
}
