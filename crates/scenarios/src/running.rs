//! The running example of Figure 1 / Examples 1–19.

use std::collections::BTreeMap;

use nested_data::Nip;
use nested_datagen::person_database;
use nrab_algebra::expr::{CmpOp, Expr};
use nrab_algebra::PlanBuilder;
use whynot_core::AttributeAlternative;

use crate::Scenario;

/// The running example: why is NY (with at least one associated person)
/// missing from the query result of Figure 1b?
pub fn running_example() -> Scenario {
    let builder = PlanBuilder::table("person");
    let builder = builder.inner_flatten("address2", None);
    let flatten = builder.current_id();
    let builder = builder.select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64));
    let selection = builder.current_id();
    let builder = builder.project_attrs(&["name", "city"]);
    let projection = builder.current_id();
    let builder = builder.relation_nest(vec!["name"], "nList");
    let nesting = builder.current_id();
    let plan = builder.build().expect("running example plan");

    let labels = BTreeMap::from([
        ("F".to_string(), flatten),
        ("σ".to_string(), selection),
        ("π".to_string(), projection),
        ("N".to_string(), nesting),
    ]);

    Scenario {
        name: "RUN".into(),
        description: "Running example: cities with workers since 2019 (Figure 1)".into(),
        db: person_database(),
        plan,
        why_not: Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))]),
        alternatives: vec![AttributeAlternative::new("person", "address2", "address1")],
        labels,
        paper_rp: vec![vec!["σ".into()], vec!["F".into(), "σ".into()]],
        paper_wnpp: vec![vec!["σ".into()]],
        gold: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_matches_example_19() {
        let scenario = running_example();
        let outcome = scenario.run().unwrap();
        let expected_rp: Vec<_> =
            scenario.paper_rp.iter().map(|labels| scenario.resolve(labels)).collect();
        assert_eq!(outcome.rp, expected_rp);
        let expected_wnpp: Vec<_> =
            scenario.paper_wnpp.iter().map(|labels| scenario.resolve(labels)).collect();
        assert_eq!(outcome.wnpp, expected_wnpp);
        assert_eq!(outcome.rp_no_sa.len(), 1);
        assert_eq!(outcome.rp_schema_alternatives, 2);
    }
}
