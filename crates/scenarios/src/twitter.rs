//! Twitter scenarios T1–T4 and T_ASD (Tables 5 and 10).

use std::collections::BTreeMap;

use nested_data::{Nip, NipCmp};
use nested_datagen::twitter::{planted, twitter_database, TwitterConfig};
use nrab_algebra::expr::{CmpOp, Expr};
use nrab_algebra::{AggFunc, Database, JoinKind, PlanBuilder};
use whynot_core::AttributeAlternative;

use crate::Scenario;

fn database(scale: usize) -> Database {
    twitter_database(TwitterConfig { scale, seed: 11 })
}

/// All Twitter scenarios at the given scale.
pub fn all_twitter(scale: usize) -> Vec<Scenario> {
    vec![t1(scale), t2(scale), t3(scale), t4(scale), t_asd(scale)]
}

/// T1: tweets providing media URLs about a basketball player. The media URL of
/// the missing tweet sits in `entities.urls`, and the text filter looks for
/// the wrong player.
pub fn t1(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("tweets").tuple_flatten("entities.media", Some("media"));
    let ft10 = builder.current_id();
    let builder = builder.project_attrs(&["text", "id", "media"]);
    let builder = builder.inner_flatten("media", Some("the_media"));
    let fi11 = builder.current_id();
    let builder = builder.select(Expr::contains(Expr::attr("text"), Expr::lit("Michael Jordan")));
    let sigma12 = builder.current_id();
    let builder = builder.tuple_flatten("the_media.url", Some("media_url")).project_attrs(&[
        "text",
        "id",
        "media_url",
    ]);
    let plan = builder.build().expect("T1 plan");

    Scenario {
        name: "T1".into(),
        description: "Tweets providing media URLs about a basketball player".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("text", Nip::val(planted::T1_TEXT)),
            ("id", Nip::Any),
            ("media_url", Nip::Any),
        ]),
        alternatives: vec![AttributeAlternative::new("tweets", "entities.media", "entities.urls")],
        labels: BTreeMap::from([
            ("F10".to_string(), ft10),
            ("F11".to_string(), fi11),
            ("σ12".to_string(), sigma12),
        ]),
        paper_rp: vec![vec!["F11".into(), "σ12".into()], vec!["F10".into(), "σ12".into()]],
        paper_wnpp: vec![vec!["F11".into()]],
        gold: None,
    }
}

/// T2: all users who tweeted about BTS in the US; the known fan's country is
/// only recorded in `user.location`.
pub fn t2(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("tweets").tuple_flatten("place.country", Some("country"));
    let ft13 = builder.current_id();
    let builder = builder
        .tuple_flatten("user.location", Some("uLoc"))
        .tuple_flatten("user.name", Some("uName"))
        .tuple_flatten("user.followers_count", Some("fCnt"))
        .project_attrs(&["text", "country", "uLoc", "uName", "fCnt"]);
    let builder = builder.select(Expr::contains(Expr::attr("text"), Expr::lit("BTS")));
    let sigma14 = builder.current_id();
    let builder = builder.select(Expr::attr_eq("country", "United States"));
    let sigma15 = builder.current_id();
    let plan = builder.build().expect("T2 plan");

    Scenario {
        name: "T2".into(),
        description: "All users who tweeted about BTS in the US".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("text", Nip::Any),
            ("country", Nip::Any),
            ("uLoc", Nip::Any),
            ("uName", Nip::val(planted::T2_USER)),
            ("fCnt", Nip::Any),
        ]),
        alternatives: vec![AttributeAlternative::new("tweets", "place.country", "user.location")],
        labels: BTreeMap::from([
            ("F13".to_string(), ft13),
            ("σ14".to_string(), sigma14),
            ("σ15".to_string(), sigma15),
        ]),
        paper_rp: vec![
            vec!["σ15".into()],
            vec!["F13".into()],
            vec!["σ14".into(), "σ15".into()],
            vec!["F13".into(), "σ14".into(), "σ15".into()],
        ],
        paper_wnpp: vec![vec!["σ15".into()]],
        gold: None,
    }
}

/// T3: hashtags and media for users mentioned in other tweets; the media URLs
/// again sit in `entities.urls`.
pub fn t3(scale: usize) -> Scenario {
    // Left: the mentioned users' own tweets.
    let left = PlanBuilder::table("tweets")
        .tuple_flatten("user.name", Some("uName"))
        .tuple_flatten("user.id", Some("uid"))
        .project_attrs(&["uName", "uid"]);
    // Right: tweets mentioning users, with hashtags and media flattened.
    let right = PlanBuilder::table("tweets").tuple_flatten("entities.media", Some("media"));
    let ft16_local = right.current_id();
    let right = right.inner_flatten("media", Some("the_media"));
    let fi17_local = right.current_id();
    let right = right
        .tuple_flatten("entities.hashtags", Some("ht"))
        .tuple_flatten("entities.mentioned_user", Some("musers"))
        .inner_flatten("musers", Some("muser"))
        .tuple_flatten("muser.id", Some("mid"))
        .tuple_flatten("the_media.url", Some("media_url"))
        .project_attrs(&["mid", "ht", "media_url"]);
    let builder = left
        .join(right, JoinKind::Inner, Expr::cmp(Expr::attr("uid"), CmpOp::Eq, Expr::attr("mid")))
        .project_attrs(&["uName", "ht", "media_url"]);
    let plan = builder.build().expect("T3 plan");
    let ft16 = plan
        .nodes_top_down()
        .iter()
        .find(|n| matches!(&n.op, nrab_algebra::Operator::TupleFlatten { alias: Some(a), .. } if a == "media"))
        .map(|n| n.id)
        .unwrap_or(ft16_local);
    let fi17 = plan
        .nodes_top_down()
        .iter()
        .find(|n| matches!(&n.op, nrab_algebra::Operator::Flatten { alias: Some(a), .. } if a == "the_media"))
        .map(|n| n.id)
        .unwrap_or(fi17_local);

    Scenario {
        name: "T3".into(),
        description: "Hashtags and media for users mentioned in other tweets".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("uName", Nip::val(planted::T3_USER)),
            ("ht", Nip::Any),
            ("media_url", Nip::Any),
        ]),
        alternatives: vec![AttributeAlternative::new("tweets", "entities.media", "entities.urls")],
        labels: BTreeMap::from([("F16".to_string(), ft16), ("F17".to_string(), fi17)]),
        paper_rp: vec![vec!["F17".into()], vec!["F16".into()]],
        paper_wnpp: vec![vec!["F17".into()]],
        gold: None,
    }
}

/// T4: nested list of countries per hashtag for UEFA tweets; the country of the
/// planted tweet is only in `user.location`, so its count is zero.
pub fn t4(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("tweets").tuple_flatten("place.country", Some("country"));
    let ft18 = builder.current_id();
    let builder = builder
        .tuple_flatten("entities.hashtags", Some("ht"))
        .inner_flatten("ht", Some("fht"))
        .tuple_flatten("fht.text", Some("htText"))
        .select(Expr::contains(Expr::attr("text"), Expr::lit("Uefa")));
    let sigma19 = builder.current_id();
    let builder = builder
        .project_attrs(&["country", "htText"])
        .relation_nest(vec!["country"], "lcountry")
        .nest_aggregate(AggFunc::Count, "lcountry", None, "cnt")
        .select(Expr::attr_cmp("cnt", CmpOp::Gt, 0i64));
    let sigma20 = builder.current_id();
    let plan = builder.build().expect("T4 plan");

    Scenario {
        name: "T4".into(),
        description: "Nested list of countries per hashtag for UEFA tweets".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("htText", Nip::val(planted::T4_HASHTAG)),
            ("lcountry", Nip::Any),
            ("cnt", Nip::pred(NipCmp::Gt, 0i64)),
        ]),
        alternatives: vec![AttributeAlternative::new("tweets", "place.country", "user.location")],
        labels: BTreeMap::from([
            ("F18".to_string(), ft18),
            ("σ19".to_string(), sigma19),
            ("σ20".to_string(), sigma20),
        ]),
        paper_rp: vec![
            vec!["F18".into()],
            vec!["σ19".into(), "σ20".into()],
            vec!["F18".into(), "σ19".into(), "σ20".into()],
        ],
        paper_wnpp: vec![vec!["σ19".into()]],
        gold: None,
    }
}

/// T_ASD: the adaptive-schema-database example — extract retweeted tweets, but
/// the query flattens the *quoted* status and filters on the quote count.
pub fn t_asd(scale: usize) -> Scenario {
    let builder = PlanBuilder::table("tweets").tuple_flatten("quoted_status", Some("status"));
    let ft21 = builder.current_id();
    let builder = builder
        .tuple_flatten("status.text", Some("status_text"))
        .tuple_flatten("status.count", Some("status_count"))
        .select(Expr::attr_cmp("status_count", CmpOp::Gt, 0i64));
    let sigma22 = builder.current_id();
    let builder = builder.project_attrs(&["id", "status_text", "status_count"]);
    let plan = builder.build().expect("T_ASD plan");

    Scenario {
        name: "TASD".into(),
        description: "ASD example: flatten, filter, project quoted tweets (2 modifications)".into(),
        db: database(scale),
        plan,
        why_not: Nip::tuple([
            ("id", Nip::Any),
            ("status_text", Nip::val(planted::TASD_TEXT)),
            ("status_count", Nip::Any),
        ]),
        alternatives: vec![AttributeAlternative::new("tweets", "quoted_status", "retweet_status")],
        labels: BTreeMap::from([("F21".to_string(), ft21), ("σ22".to_string(), sigma22)]),
        paper_rp: vec![vec!["F21".into()], vec!["F21".into(), "σ22".into()]],
        paper_wnpp: vec![],
        gold: Some(vec!["F21".into(), "σ22".into()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_scenarios_build_and_validate() {
        for scenario in all_twitter(40) {
            scenario.question().validate().unwrap_or_else(|e| {
                panic!("scenario {} has an invalid question: {e}", scenario.name)
            });
        }
    }
}
