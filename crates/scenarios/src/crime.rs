//! Crime scenarios C1–C3 (Table 6), used to compare against Why-Not and
//! Conseil in Section 6.4.

use std::collections::BTreeMap;

use nested_data::Nip;
use nested_datagen::crime_database;
use nrab_algebra::expr::{CmpOp, Expr};
use nrab_algebra::{JoinKind, PlanBuilder, ProjColumn};
use whynot_core::AttributeAlternative;

use crate::Scenario;

/// All crime scenarios.
pub fn all_crime() -> Vec<Scenario> {
    vec![c1(), c2(), c3()]
}

/// C1: suspects with blue hair whose sighting was reported by a witness in the
/// crime's sector. Why is Roger missing? Both the hair selection and the
/// witness join stand in the way.
pub fn c1() -> Scenario {
    let persons = PlanBuilder::table("persons").select(Expr::attr_eq("hair", "blue"));
    let sigma1 = persons.current_id();
    let sightings = PlanBuilder::table("sightings");
    let builder = sightings.join(
        persons,
        JoinKind::Inner,
        Expr::and(
            Expr::cmp(Expr::attr("shair"), CmpOp::Eq, Expr::attr("hair")),
            Expr::cmp(Expr::attr("sclothes"), CmpOp::Eq, Expr::attr("clothes")),
        ),
    );
    let builder = PlanBuilder::table("witnesses").join(
        builder,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("witness"), CmpOp::Eq, Expr::attr("pname")),
    );
    let builder = PlanBuilder::table("crimes")
        .join(
            builder,
            JoinKind::Inner,
            Expr::cmp(Expr::attr("csector"), CmpOp::Eq, Expr::attr("sector")),
        )
        .project_attrs(&["pname", "ctype"]);
    let plan = builder.build().expect("C1 plan");
    // Recover the ids of the hair selection and the witness join after merging.
    let sigma1 = plan
        .nodes_top_down()
        .iter()
        .find(|n| n.op.to_string().contains("hair = \"blue\""))
        .map(|n| n.id)
        .unwrap_or(sigma1);
    let join2 = plan
        .nodes_top_down()
        .iter()
        .find(|n| n.op.to_string().contains("witness ="))
        .map(|n| n.id)
        .expect("witness join");

    Scenario {
        name: "C1".into(),
        description: "Crime C1: blue-haired suspects reported by a witness in the crime sector"
            .into(),
        db: crime_database(),
        plan,
        why_not: Nip::tuple([("pname", Nip::val("Roger")), ("ctype", Nip::Any)]),
        alternatives: vec![AttributeAlternative::new("persons", "hair", "clothes")],
        labels: BTreeMap::from([("σ1".to_string(), sigma1), ("⋈2".to_string(), join2)]),
        paper_rp: vec![vec!["σ1".into(), "⋈2".into()]],
        paper_wnpp: vec![vec!["σ1".into()]],
        gold: None,
    }
}

/// C2: persons matching a sighting reported by the witness Susan from a
/// high-numbered sector. Why is Conedera missing?
pub fn c2() -> Scenario {
    let witnesses =
        PlanBuilder::table("witnesses").select(Expr::attr_cmp("sector", CmpOp::Gt, 90i64));
    let sigma3 = witnesses.current_id();
    let witnesses = witnesses.select(Expr::attr_eq("wname", "Susan"));
    let sigma4 = witnesses.current_id();
    let builder = PlanBuilder::table("crimes").join(
        witnesses,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("csector"), CmpOp::Eq, Expr::attr("sector")),
    );
    let builder = PlanBuilder::table("sightings").join(
        builder,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("sname"), CmpOp::Eq, Expr::attr("witness")),
    );
    let builder = PlanBuilder::table("persons")
        .join(
            builder,
            JoinKind::Inner,
            Expr::and(
                Expr::cmp(Expr::attr("hair"), CmpOp::Eq, Expr::attr("shair")),
                Expr::cmp(Expr::attr("clothes"), CmpOp::Eq, Expr::attr("sclothes")),
            ),
        )
        .project_attrs(&["pname"]);
    let plan = builder.build().expect("C2 plan");
    let sigma3 = plan
        .nodes_top_down()
        .iter()
        .find(|n| n.op.to_string().contains("sector >"))
        .map(|n| n.id)
        .unwrap_or(sigma3);
    let sigma4 = plan
        .nodes_top_down()
        .iter()
        .find(|n| n.op.to_string().contains("wname ="))
        .map(|n| n.id)
        .unwrap_or(sigma4);

    Scenario {
        name: "C2".into(),
        description: "Crime C2: persons matching a sighting reported by Susan from sector > 90"
            .into(),
        db: crime_database(),
        plan,
        why_not: Nip::tuple([("pname", Nip::val("Conedera"))]),
        alternatives: vec![],
        labels: BTreeMap::from([("σ3".to_string(), sigma3), ("σ4".to_string(), sigma4)]),
        paper_rp: vec![vec!["σ4".into()], vec!["σ3".into(), "σ4".into()]],
        paper_wnpp: vec![vec!["σ4".into()]],
        gold: None,
    }
}

/// C3: sighted persons with their description — the description should come
/// from `clothes`, not `hair`. Why is Ashishbakshi not listed with "snow"?
pub fn c3() -> Scenario {
    let builder = PlanBuilder::table("witnesses").join(
        PlanBuilder::table("crimes"),
        JoinKind::Inner,
        Expr::cmp(Expr::attr("sector"), CmpOp::Eq, Expr::attr("csector")),
    );
    let builder = PlanBuilder::table("sightings").join(
        builder,
        JoinKind::Inner,
        Expr::cmp(Expr::attr("sname"), CmpOp::Eq, Expr::attr("witness")),
    );
    let join5 = builder.current_id();
    let builder = builder
        .project(vec![ProjColumn::renamed("name", "sname"), ProjColumn::renamed("desc", "shair")]);
    let pi6 = builder.current_id();
    let plan = builder.build().expect("C3 plan");

    Scenario {
        name: "C3".into(),
        description: "Crime C3: sighted persons with their description".into(),
        db: crime_database(),
        plan,
        why_not: Nip::tuple([("name", Nip::val("Ashishbakshi")), ("desc", Nip::val("snow"))]),
        alternatives: vec![AttributeAlternative::new("sightings", "shair", "sclothes")],
        labels: BTreeMap::from([("⋈5".to_string(), join5), ("π6".to_string(), pi6)]),
        paper_rp: vec![vec!["π6".into()]],
        paper_wnpp: vec![vec!["⋈5".into()]],
        gold: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crime_scenarios_build_and_validate() {
        for scenario in all_crime() {
            scenario.question().validate().unwrap_or_else(|e| {
                panic!("scenario {} has an invalid question: {e}", scenario.name)
            });
        }
    }
}
