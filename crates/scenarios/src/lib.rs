//! # whynot-scenarios
//!
//! The paper's evaluation scenarios (Section 6.2, Tables 4–6, 9, and 10):
//! DBLP D1–D5, Twitter T1–T4 and T_ASD, nested TPC-H Q1/Q3/Q4/Q6/Q10/Q13 with
//! their flat variants, and the crime micro-benchmark C1–C3 — each bundled
//! with its database, query plan, why-not question, attribute alternatives,
//! the expected explanations of Table 8, and (where the paper defines one) the
//! gold-standard explanation.
//!
//! [`Scenario::run`] executes the three competitors compared in the paper —
//! the lineage-based baseline WN++, the reparameterization approach without
//! schema alternatives (RPnoSA), and the full approach (RP) — and reports
//! their explanation sets, which is exactly the information summarized in
//! Tables 7 and 8.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, BTreeSet};

use nested_data::Nip;
use nrab_algebra::{Database, OpId, QueryPlan};
use whynot_baselines::wnpp_explanations;
use whynot_core::{AttributeAlternative, WhyNotEngine, WhyNotQuestion, WhyNotResult};

pub mod crime;
pub mod dblp;
pub mod running;
pub mod tpch;
pub mod twitter;

/// A named evaluation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short name (D1, T3, Q10, C2, ...).
    pub name: String,
    /// One-line description (mirrors Table 7).
    pub description: String,
    /// The input database.
    pub db: Database,
    /// The (possibly erroneous) query.
    pub plan: QueryPlan,
    /// The why-not question's NIP.
    pub why_not: Nip,
    /// Attribute alternatives provided to the RP engine.
    pub alternatives: Vec<AttributeAlternative>,
    /// Human-readable labels for the operators referenced in the paper
    /// (e.g. "σ27" → operator id), used by tests and the benchmark harness.
    pub labels: BTreeMap<String, OpId>,
    /// The explanations the paper reports for the full approach (Table 8),
    /// expressed via the labels above.
    pub paper_rp: Vec<Vec<String>>,
    /// The explanations the paper reports for WN++ (Table 8).
    pub paper_wnpp: Vec<Vec<String>>,
    /// The gold-standard explanation (the operators whose parameters were
    /// deliberately modified), if the scenario has one.
    pub gold: Option<Vec<String>>,
}

impl Scenario {
    /// The why-not question of this scenario.
    pub fn question(&self) -> WhyNotQuestion {
        WhyNotQuestion::new(self.plan.clone(), self.db.clone(), self.why_not.clone())
    }

    /// Resolves a list of operator labels to operator ids.
    pub fn resolve(&self, labels: &[String]) -> BTreeSet<OpId> {
        labels.iter().filter_map(|l| self.labels.get(l).copied()).collect()
    }

    /// The gold-standard operators, if any.
    pub fn gold_ops(&self) -> Option<BTreeSet<OpId>> {
        self.gold.as_ref().map(|labels| self.resolve(labels))
    }

    /// Runs WN++, RPnoSA, and RP on this scenario.
    pub fn run(&self) -> WhyNotResult<ScenarioOutcome> {
        let question = self.question();
        let wnpp = wnpp_explanations(&self.plan, &self.db, &self.why_not)?;
        let rp_no_sa = WhyNotEngine::rp_no_sa().explain(&question, &self.alternatives)?;
        let rp = WhyNotEngine::rp().explain(&question, &self.alternatives)?;
        let gold = self.gold_ops();
        let gold_position_rp = gold
            .as_ref()
            .and_then(|g| rp.explanations.iter().position(|e| &e.operators == g).map(|p| p + 1));
        Ok(ScenarioOutcome {
            name: self.name.clone(),
            wnpp,
            rp_no_sa: rp_no_sa.operator_sets(),
            rp: rp.operator_sets(),
            rp_schema_alternatives: rp.schema_alternatives.len(),
            gold_position_rp,
        })
    }
}

/// The outcome of running the three competitors on a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Explanations of the lineage-based baseline.
    pub wnpp: Vec<BTreeSet<OpId>>,
    /// Explanations of the reparameterization approach without schema alternatives.
    pub rp_no_sa: Vec<BTreeSet<OpId>>,
    /// Explanations of the full approach.
    pub rp: Vec<BTreeSet<OpId>>,
    /// Number of schema alternatives the full approach considered.
    pub rp_schema_alternatives: usize,
    /// 1-based rank of the gold-standard explanation in the RP output, if any.
    pub gold_position_rp: Option<usize>,
}

impl ScenarioOutcome {
    /// The three explanation counts reported in Table 7.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.wnpp.len(), self.rp_no_sa.len(), self.rp.len())
    }
}

/// All scenarios at their default (laptop) scale: running example, D1–D5,
/// T1–T4, T_ASD, Q1–Q13 (nested and flat), C1–C3.
pub fn all_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![running::running_example()];
    scenarios.extend(dblp::all_dblp(dblp_scale()));
    scenarios.extend(twitter::all_twitter(twitter_scale()));
    scenarios.extend(tpch::all_tpch(tpch_scale()));
    scenarios.extend(crime::all_crime());
    scenarios
}

/// Default DBLP scale for scenario construction.
pub fn dblp_scale() -> usize {
    120
}

/// Default Twitter scale for scenario construction.
pub fn twitter_scale() -> usize {
    150
}

/// Default TPC-H scale (number of customers) for scenario construction.
pub fn tpch_scale() -> usize {
    60
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_have_valid_questions() {
        for scenario in all_scenarios() {
            let question = scenario.question();
            assert!(
                question.validate().is_ok(),
                "scenario {} has an invalid why-not question",
                scenario.name
            );
        }
    }

    #[test]
    fn all_scenarios_resolve_their_gold_labels() {
        for scenario in all_scenarios() {
            if let Some(gold) = &scenario.gold {
                let resolved = scenario.resolve(gold);
                assert_eq!(
                    resolved.len(),
                    gold.len(),
                    "scenario {} has unresolved gold labels {gold:?}",
                    scenario.name
                );
            }
            for explanation in &scenario.paper_rp {
                assert_eq!(
                    scenario.resolve(explanation).len(),
                    explanation.len(),
                    "scenario {} has unresolved labels in {explanation:?}",
                    scenario.name
                );
            }
        }
    }
}
