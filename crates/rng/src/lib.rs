//! # whynot-rng
//!
//! A tiny, dependency-free, deterministic pseudo-random number generator with
//! a `rand`-like surface, used by the synthetic data generators and the
//! property-style tests. The workspace is built in hermetic environments
//! without network access, so it cannot depend on the `rand` crate; the
//! generators only need *seeded determinism*, not cryptographic quality.
//!
//! The core generator is xoshiro256** (public domain, Blackman & Vigna),
//! seeded through splitmix64 so that small seeds still produce well-mixed
//! state.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Seeding behaviour (mirrors the subset of `rand::SeedableRng` we use).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Random-value generation (mirrors the subset of `rand::Rng` we use).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the given range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: AsMut<StdRng>,
    {
        range.sample(self.as_mut())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit() < p
    }

    /// A uniform sample from `[0, 1)`.
    fn gen_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly chosen reference into a non-empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T
    where
        Self: AsMut<StdRng>,
    {
        assert!(!slice.is_empty(), "choose on empty slice");
        let idx = self.gen_range(0..slice.len());
        &slice[idx]
    }
}

/// The default deterministic generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl AsMut<StdRng> for StdRng {
    fn as_mut(&mut self) -> &mut StdRng {
        self
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl StdRng {
    /// Unbiased uniform sample from `[0, bound)` (Lemire-style rejection).
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Rejection sampling on the top bits keeps the distribution uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_unit()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * rng.gen_unit()
    }
}

/// Namespace mirroring `rand::rngs` so call sites can keep familiar imports.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i64 = rng.gen_range(1i64..=28);
            assert!((1..=28).contains(&z));
            let f: f64 = rng.gen_range(100.0..200.0);
            assert!((100.0..200.0).contains(&f));
        }
    }

    #[test]
    fn bounds_are_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "got {hits}");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn choose_picks_from_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
