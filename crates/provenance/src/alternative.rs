//! Schema alternatives as consumed by the tracer.
//!
//! A schema alternative (Section 5.2) substitutes zero or more attributes in
//! operator parameters with alternative attributes of matching type. For the
//! tracer, an alternative is described by
//!
//! * the attribute substitutions to apply per operator, and
//! * for every operator, a NIP over that operator's *output* that
//!   characterizes tuples still able to contribute to the missing answer under
//!   this alternative (the pushed-down why-not constraints produced by schema
//!   backtracing).
//!
//! Alternative index 0 is, by convention, the original query (no
//! substitutions), which the paper denotes `S₁`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nested_data::{AttrPath, Nip};
use nrab_algebra::params::substitute_attribute;
use nrab_algebra::{OpId, OpNode, Operator};

/// One attribute substitution at one operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSubstitution {
    /// The operator whose parameters are rewritten.
    pub op: OpId,
    /// The attribute (path) referenced by the original query.
    pub from: AttrPath,
    /// The alternative attribute (path) used instead.
    pub to: AttrPath,
}

impl OpSubstitution {
    /// Creates a substitution.
    pub fn new(op: OpId, from: impl Into<AttrPath>, to: impl Into<AttrPath>) -> Self {
        OpSubstitution { op, from: from.into(), to: to.into() }
    }
}

impl fmt::Display for OpSubstitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {}: {} → {}", self.op, self.from, self.to)
    }
}

/// A schema alternative: substitutions plus per-operator consistency NIPs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaAlternative {
    /// Index of the alternative (0 = original query).
    pub index: usize,
    /// Attribute substitutions applied under this alternative.
    pub substitutions: Vec<OpSubstitution>,
    /// For every operator, the NIP (over its output tuples) that re-validates
    /// whether a tuple can still contribute to the missing answer.
    pub consistency: BTreeMap<OpId, Nip>,
}

impl SchemaAlternative {
    /// The original-query alternative (no substitutions).
    pub fn original(consistency: BTreeMap<OpId, Nip>) -> Self {
        SchemaAlternative { index: 0, substitutions: Vec::new(), consistency }
    }

    /// Creates an alternative with the given index, substitutions, and NIPs.
    pub fn new(
        index: usize,
        substitutions: Vec<OpSubstitution>,
        consistency: BTreeMap<OpId, Nip>,
    ) -> Self {
        SchemaAlternative { index, substitutions, consistency }
    }

    /// Whether this is the original query (no substitutions).
    pub fn is_original(&self) -> bool {
        self.substitutions.is_empty()
    }

    /// The operators whose parameters this alternative rewrites — the "SR
    /// prefix" with which `approximateMSRs` seeds its search for this
    /// alternative.
    pub fn substituted_ops(&self) -> BTreeSet<OpId> {
        self.substitutions.iter().map(|s| s.op).collect()
    }

    /// The consistency NIP for an operator's output, if any.
    pub fn consistency_nip(&self, op: OpId) -> Option<&Nip> {
        self.consistency.get(&op)
    }

    /// A stable textual signature of this alternative's substitutions (and
    /// nothing else — consistency NIPs are deliberately excluded).
    ///
    /// Two alternatives with equal signatures produce identical generalized
    /// traces over the same plan and database, which is what makes the
    /// signature usable as a trace-cache key component. The encoding is
    /// injective: attribute paths are length-prefixed (netstring-style), so
    /// path strings containing separator characters cannot collide with the
    /// structure of the signature.
    pub fn substitution_signature(&self) -> String {
        fn netstring(s: &str) -> String {
            format!("{}~{s}", s.len())
        }
        let mut parts: Vec<String> = self
            .substitutions
            .iter()
            .map(|s| {
                format!(
                    "{}:{}{}",
                    s.op,
                    netstring(&s.from.to_string()),
                    netstring(&s.to.to_string())
                )
            })
            .collect();
        parts.sort();
        // Count prefix + self-delimiting parts keep the concatenation
        // unambiguous.
        format!("{}:{}", parts.len(), parts.concat())
    }

    /// Returns the operator of `node` with this alternative's substitutions
    /// applied (the "effective" operator evaluated during tracing).
    pub fn effective_operator(&self, node: &OpNode) -> Operator {
        let mut op = node.op.clone();
        for substitution in &self.substitutions {
            if substitution.op == node.id {
                substitute_attribute(&mut op, &substitution.from, &substitution.to);
            }
        }
        op
    }
}

impl fmt::Display for SchemaAlternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.substitutions.is_empty() {
            write!(f, "S{} (original)", self.index + 1)
        } else {
            write!(f, "S{} (", self.index + 1)?;
            for (i, s) in self.substitutions.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrab_algebra::expr::{CmpOp, Expr};
    use nrab_algebra::{FlattenKind, PlanBuilder};

    fn plan() -> nrab_algebra::QueryPlan {
        PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .build()
            .unwrap()
    }

    #[test]
    fn original_alternative_has_no_substitutions() {
        let sa = SchemaAlternative::original(BTreeMap::new());
        assert!(sa.is_original());
        assert!(sa.substituted_ops().is_empty());
        assert!(sa.consistency_nip(0).is_none());
        assert_eq!(sa.to_string(), "S1 (original)");
    }

    #[test]
    fn substitution_signatures_are_injective_under_separator_characters() {
        // One substitution whose paths contain signature separator characters
        // must not collide with two plain substitutions spelling the same
        // concatenated text.
        let tricky = SchemaAlternative::new(
            1,
            vec![OpSubstitution::new(1, AttrPath::single("a~1"), AttrPath::single("b:2"))],
            BTreeMap::new(),
        );
        let plain = SchemaAlternative::new(
            1,
            vec![
                OpSubstitution::new(1, AttrPath::single("a"), AttrPath::single("b")),
                OpSubstitution::new(1, AttrPath::single("1"), AttrPath::single("2")),
            ],
            BTreeMap::new(),
        );
        assert_ne!(tricky.substitution_signature(), plain.substitution_signature());

        // The slice-level signature length-prefixes per-SA parts: one SA with
        // two substitutions differs from two SAs with one each.
        let one_sa = crate::substitution_signature(std::slice::from_ref(&plain));
        let two_sas = crate::substitution_signature(&[
            SchemaAlternative::new(
                1,
                vec![OpSubstitution::new(1, AttrPath::single("a"), AttrPath::single("b"))],
                BTreeMap::new(),
            ),
            SchemaAlternative::new(
                2,
                vec![OpSubstitution::new(1, AttrPath::single("1"), AttrPath::single("2"))],
                BTreeMap::new(),
            ),
        ]);
        assert_ne!(one_sa, two_sas);
        // Identical substitution sets still agree.
        assert_eq!(plain.substitution_signature(), plain.clone().substitution_signature());
    }

    #[test]
    fn effective_operator_applies_substitution_only_at_target_op() {
        let plan = plan();
        let sa = SchemaAlternative::new(
            1,
            vec![OpSubstitution::new(1, "address2", "address1")],
            BTreeMap::new(),
        );
        assert_eq!(sa.substituted_ops().into_iter().collect::<Vec<_>>(), vec![1]);

        let flatten = plan.node(1).unwrap();
        let effective = sa.effective_operator(flatten);
        match effective {
            Operator::Flatten { attr, kind, .. } => {
                assert_eq!(attr, "address1");
                assert_eq!(kind, FlattenKind::Inner);
            }
            other => panic!("unexpected operator {other:?}"),
        }

        // Other operators are untouched.
        let select = plan.node(2).unwrap();
        assert_eq!(sa.effective_operator(select), select.op);
        assert!(sa.to_string().contains("address1"));
    }
}
