//! Annotated tuples, per-operator traces, and whole-plan trace results.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nested_data::Tuple;
use nrab_algebra::OpId;

/// The per-schema-alternative annotations of one traced tuple at one operator
/// (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SaFlags {
    /// Does the tuple exist under this schema alternative?
    pub valid: bool,
    /// Can the tuple (re-validated against the pushed-down why-not
    /// constraints) still contribute to the missing answer?
    pub consistent: bool,
    /// Would the operator keep/produce this tuple under its *original*
    /// parameters (modulo the attribute changes of the alternative)?
    pub retained: bool,
}

impl SaFlags {
    /// Flags for a tuple that does not exist under the alternative (padding).
    pub fn absent() -> Self {
        SaFlags { valid: false, consistent: false, retained: false }
    }

    /// Whether all annotations are set (the "all annotations being set to 1"
    /// test of Algorithm 4, lines 13 and 18).
    pub fn all_ones(&self) -> bool {
        self.valid && self.consistent && self.retained
    }

    /// Whether the tuple witnesses the need to reparameterize the operator
    /// (Algorithm 4, line 8): it exists, it can still contribute to the
    /// missing answer, but the original operator loses it.
    pub fn needs_reparameterization(&self) -> bool {
        self.valid && self.consistent && !self.retained
    }
}

/// One tuple of an operator's traced (generalized) output.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedTuple {
    /// Fresh identifier, unique across the whole trace.
    pub id: u64,
    /// The tuple's data under each schema alternative (`None` = the tuple does
    /// not exist under that alternative and is only present as padding).
    pub variants: Vec<Option<Tuple>>,
    /// The annotations under each schema alternative.
    pub flags: Vec<SaFlags>,
    /// Identifiers of the traced input tuples this tuple was derived from,
    /// per schema alternative (lineage can differ between alternatives, e.g.
    /// the members of a nested group).
    pub inputs: Vec<Vec<u64>>,
    /// Alternative data variants used by consistency (re-)annotation, per
    /// schema alternative. Only grouped aggregations populate this: the
    /// aggregate computed from the *retained* members only, which the
    /// consistency check consults as a fallback (Section 5.5). Empty for all
    /// other operators.
    pub fallback_variants: Vec<Option<Tuple>>,
}

impl TracedTuple {
    /// Creates a traced tuple without fallback variants (every operator except
    /// grouped aggregation).
    pub fn new(
        id: u64,
        variants: Vec<Option<Tuple>>,
        flags: Vec<SaFlags>,
        inputs: Vec<Vec<u64>>,
    ) -> Self {
        TracedTuple { id, variants, flags, inputs, fallback_variants: Vec::new() }
    }

    /// Creates a traced tuple with per-SA fallback variants (grouped
    /// aggregation).
    pub fn with_fallbacks(
        id: u64,
        variants: Vec<Option<Tuple>>,
        flags: Vec<SaFlags>,
        inputs: Vec<Vec<u64>>,
        fallback_variants: Vec<Option<Tuple>>,
    ) -> Self {
        TracedTuple { id, variants, flags, inputs, fallback_variants }
    }

    /// The fallback data variant under alternative `sa`, if any.
    pub fn fallback_variant(&self, sa: usize) -> Option<&Tuple> {
        self.fallback_variants.get(sa).and_then(Option::as_ref)
    }
    /// The tuple's data under alternative `sa`, if it exists there.
    pub fn variant(&self, sa: usize) -> Option<&Tuple> {
        self.variants.get(sa).and_then(Option::as_ref)
    }

    /// The flags under alternative `sa` (absent flags if out of range).
    pub fn flags(&self, sa: usize) -> SaFlags {
        self.flags.get(sa).copied().unwrap_or_else(SaFlags::absent)
    }

    /// The lineage (input tuple ids) under alternative `sa`.
    pub fn input_ids(&self, sa: usize) -> &[u64] {
        self.inputs.get(sa).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The union of the lineage over all alternatives.
    pub fn all_input_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.inputs.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// The traced (generalized) output of one operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpTrace {
    /// The operator id.
    pub op: OpId,
    /// The operator's kind symbol (for reports).
    pub kind: String,
    /// The traced tuples.
    pub tuples: Vec<TracedTuple>,
}

impl OpTrace {
    /// Whether any tuple needs a reparameterization of this operator under
    /// alternative `sa` *and* contributes to a consistent output tuple
    /// (`contributing` is the id set computed by
    /// [`TraceResult::contributing_ids`]).
    pub fn has_reparameterization_witness(&self, sa: usize, contributing: &BTreeSet<u64>) -> bool {
        self.tuples
            .iter()
            .any(|t| t.flags(sa).needs_reparameterization() && contributing.contains(&t.id))
    }

    /// Whether any tuple has all annotations set under alternative `sa`
    /// (optionally restricted to tuples contributing to a consistent output).
    pub fn has_all_ones_witness(&self, sa: usize, contributing: Option<&BTreeSet<u64>>) -> bool {
        self.tuples.iter().any(|t| {
            t.flags(sa).all_ones() && contributing.map(|c| c.contains(&t.id)).unwrap_or(true)
        })
    }

    /// Number of traced tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The traced output of every operator of a plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceResult {
    /// Per-operator traces.
    pub traces: BTreeMap<OpId, OpTrace>,
    /// The root operator (the query output).
    pub root: OpId,
    /// Operator ids in pre-order (root first) — the order in which
    /// `approximateMSRs` walks the plan.
    pub pre_order: Vec<OpId>,
    /// Number of schema alternatives traced.
    pub num_sas: usize,
}

impl TraceResult {
    /// The trace of one operator.
    pub fn trace(&self, op: OpId) -> Option<&OpTrace> {
        self.traces.get(&op)
    }

    /// The trace of the root operator (the generalized query output).
    pub fn root_trace(&self) -> &OpTrace {
        &self.traces[&self.root]
    }

    /// Whether the query result under alternative `sa` contains a tuple that
    /// is valid and consistent — i.e. whether *some* reparameterization
    /// captured by the tracing can produce the missing answer under `sa`.
    pub fn has_consistent_output(&self, sa: usize) -> bool {
        self.root_trace().tuples.iter().any(|t| {
            let f = t.flags(sa);
            f.valid && f.consistent
        })
    }

    /// The identifiers of all traced tuples (at any operator) that lie in the
    /// lineage of a valid and consistent *output* tuple under alternative
    /// `sa`. This is the "in the lineage of a consistent output tuple" test of
    /// Algorithm 4, line 8.
    pub fn contributing_ids(&self, sa: usize) -> BTreeSet<u64> {
        let mut contributing = BTreeSet::new();
        for (position, op_id) in self.pre_order.iter().enumerate() {
            let Some(trace) = self.traces.get(op_id) else { continue };
            for tuple in &trace.tuples {
                let selected = if position == 0 {
                    let f = tuple.flags(sa);
                    f.valid && f.consistent
                } else {
                    contributing.contains(&tuple.id)
                };
                if selected {
                    contributing.insert(tuple.id);
                    contributing.extend(tuple.input_ids(sa).iter().copied());
                }
            }
        }
        contributing
    }

    /// Counts, for the root trace under alternative `sa`, the number of valid
    /// tuples and the number of valid-and-retained tuples. Used for the loose
    /// side-effect bounds of Section 5.4.
    pub fn root_counts(&self, sa: usize) -> RootCounts {
        let mut counts = RootCounts::default();
        for tuple in &self.root_trace().tuples {
            let f = tuple.flags(sa);
            if f.valid {
                counts.valid += 1;
                if f.retained {
                    counts.valid_retained += 1;
                }
                if f.consistent {
                    counts.valid_consistent += 1;
                }
            }
        }
        counts
    }
}

/// A whole-plan trace whose `consistent` flags have *not* been computed yet.
///
/// Produced by [`crate::trace_plan_generalized`]: it depends only on the plan,
/// the database, and the attribute *substitutions* of the schema alternatives
/// — never on the why-not question's pushed-down NIPs. It is therefore safe to
/// cache and share across why-not questions that target the same plan and
/// database; [`crate::annotate_consistency`] specializes a generalized trace
/// to one question by filling in the `consistent` flags.
///
/// The `consistent` flags inside are placeholders (`false`); the type exists
/// precisely so that un-annotated traces cannot be fed to the explanation
/// algorithm by accident.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralizedTrace {
    pub(crate) inner: TraceResult,
}

impl GeneralizedTrace {
    /// Number of schema alternatives traced.
    pub fn num_sas(&self) -> usize {
        self.inner.num_sas
    }

    /// Total number of traced tuples across all operators (a size measure for
    /// cache accounting).
    pub fn tuple_count(&self) -> usize {
        self.inner.traces.values().map(|t| t.tuples.len()).sum()
    }

    /// The operator ids covered by the trace, in pre-order.
    pub fn pre_order(&self) -> &[OpId] {
        &self.inner.pre_order
    }
}

/// Tuple counts over the root trace used by the side-effect bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RootCounts {
    /// Valid top-level tuples under the alternative.
    pub valid: u64,
    /// Valid tuples also retained by the root operator.
    pub valid_retained: u64,
    /// Valid tuples that are consistent with the why-not question.
    pub valid_consistent: u64,
}

impl fmt::Display for SaFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v={} c={} r={}", self.valid as u8, self.consistent as u8, self.retained as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_data::Value;

    fn tuple(id: u64, flags: Vec<SaFlags>, input_ids: Vec<u64>) -> TracedTuple {
        let variants: Vec<Option<Tuple>> = flags
            .iter()
            .map(|f| if f.valid { Some(Tuple::new([("x", Value::int(id as i64))])) } else { None })
            .collect();
        let inputs = vec![input_ids; flags.len()];
        TracedTuple::new(id, variants, flags, inputs)
    }

    fn flags(valid: bool, consistent: bool, retained: bool) -> SaFlags {
        SaFlags { valid, consistent, retained }
    }

    #[test]
    fn flag_predicates() {
        assert!(flags(true, true, true).all_ones());
        assert!(!flags(true, true, false).all_ones());
        assert!(flags(true, true, false).needs_reparameterization());
        assert!(!flags(false, true, false).needs_reparameterization());
        assert_eq!(SaFlags::absent().to_string(), "v=0 c=0 r=0");
    }

    #[test]
    fn contributing_ids_follow_lineage_from_consistent_outputs() {
        // Plan: op 2 (root) <- op 1 <- op 0, one SA.
        let mut traces = BTreeMap::new();
        traces.insert(
            0,
            OpTrace {
                op: 0,
                kind: "table".into(),
                tuples: vec![
                    tuple(1, vec![flags(true, true, true)], vec![]),
                    tuple(2, vec![flags(true, false, true)], vec![]),
                ],
            },
        );
        traces.insert(
            1,
            OpTrace {
                op: 1,
                kind: "σ".into(),
                tuples: vec![
                    tuple(3, vec![flags(true, true, false)], vec![1]),
                    tuple(4, vec![flags(true, false, true)], vec![2]),
                ],
            },
        );
        traces.insert(
            2,
            OpTrace {
                op: 2,
                kind: "Nᴿ".into(),
                tuples: vec![
                    tuple(5, vec![flags(true, true, true)], vec![3]),
                    tuple(6, vec![flags(true, false, true)], vec![4]),
                ],
            },
        );
        let result = TraceResult { traces, root: 2, pre_order: vec![2, 1, 0], num_sas: 1 };

        assert!(result.has_consistent_output(0));
        let contributing = result.contributing_ids(0);
        assert_eq!(contributing, BTreeSet::from([5, 3, 1]));

        // The selection (op 1) has a reparameterization witness (tuple 3).
        assert!(result.trace(1).unwrap().has_reparameterization_witness(0, &contributing));
        // The root does not (its consistent tuple is retained).
        assert!(!result.trace(2).unwrap().has_reparameterization_witness(0, &contributing));
        // All-ones witness exists at the root and at op 0.
        assert!(result.trace(2).unwrap().has_all_ones_witness(0, Some(&contributing)));
        assert!(result.trace(0).unwrap().has_all_ones_witness(0, Some(&contributing)));

        let counts = result.root_counts(0);
        assert_eq!(counts.valid, 2);
        assert_eq!(counts.valid_retained, 2);
        assert_eq!(counts.valid_consistent, 1);
    }

    #[test]
    fn variant_and_flag_accessors_handle_out_of_range() {
        let t = tuple(7, vec![flags(true, true, true)], vec![3]);
        assert!(t.variant(0).is_some());
        assert!(t.variant(5).is_none());
        assert_eq!(t.flags(5), SaFlags::absent());
        assert_eq!(t.input_ids(0), &[3]);
        assert!(t.input_ids(9).is_empty());
        assert_eq!(t.all_input_ids(), vec![3]);
        let trace = OpTrace { op: 0, kind: "σ".into(), tuples: vec![t] };
        assert_eq!(trace.len(), 1);
        assert!(!trace.is_empty());
    }
}
