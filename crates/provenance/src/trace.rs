//! The tracing evaluator: generalized operator evaluation with per-schema-
//! alternative annotations (Section 5.3).
//!
//! For every plan operator, the tracer computes an [`OpTrace`] whose tuples
//! carry, per schema alternative, the data variant and the `valid` /
//! `consistent` / `retained` flags. Operators are *generalized* so that data a
//! reparameterization could keep also flows upward:
//!
//! * selections annotate instead of filtering,
//! * relation flattens behave like outer flattens,
//! * joins behave like full outer joins,
//! * difference annotates instead of removing.
//!
//! All schema alternatives are traced in a single pass over the data (the
//! merge step of Algorithm 3 / Figure 7), which is what makes additional
//! alternatives cheaper than additional query executions (Figure 11).
//!
//! The per-tuple work of the 1:1 operators (structural, selection, flatten)
//! and the per-schema-alternative work of the n:m operators (join probing,
//! nesting, aggregation) are independent, so both fan out across the
//! `whynot-exec` pool. Every parallel loop is an ordered `par_map` whose
//! results are reassembled in input order and whose fresh tuple ids are
//! assigned in a serial pass afterwards, so the trace is **bit-identical**
//! to the serial one at any `WHYNOT_THREADS` (the cross-crate determinism
//! tests enforce this).

use std::collections::BTreeMap;
use std::sync::Arc;

use nested_data::{
    AttrPath, Bag, Column, ColumnarBag, NestedType, Nip, Sym, Tuple, TupleType, Value,
};
use nrab_algebra::eval::{apply_operator, columnar_chunks, columnar_mask};
use nrab_algebra::expr::Expr;
use nrab_algebra::join::{
    hash_join_enabled, join_matches_probe, join_matches_with, split_equi_join, EquiJoin, JoinBuild,
    JoinMatches, JoinSide,
};
use nrab_algebra::pipeline::pipelining_enabled;
use nrab_algebra::schema::output_type;
use nrab_algebra::{AggFunc, ProjColumn};
use nrab_algebra::{
    AlgebraError, AlgebraResult, Database, FlattenKind, JoinKind, OpId, OpNode, Operator, QueryPlan,
};
use whynot_exec::{par_map, par_map_range};

use crate::alternative::SchemaAlternative;
use crate::annotate::{GeneralizedTrace, OpTrace, SaFlags, TraceResult, TracedTuple};

/// Traces a plan over a database under the given schema alternatives.
///
/// Alternative 0 should be the original query (no substitutions); at least one
/// alternative must be provided.
///
/// Equivalent to [`trace_plan_generalized`] followed by
/// [`annotate_consistency`]; callers that answer many questions against the
/// same plan and database should invoke the two stages separately and cache
/// the (question-independent) generalized trace.
pub fn trace_plan(
    plan: &QueryPlan,
    db: &Database,
    sas: &[SchemaAlternative],
) -> AlgebraResult<TraceResult> {
    let base = trace_plan_generalized(plan, db, sas)?;
    Ok(annotate_consistency(&base, plan, sas))
}

/// The expensive, question-independent part of tracing: evaluates the plan in
/// its generalized form and computes the `valid` and `retained` flags, the
/// data variants, and the lineage for every schema alternative.
///
/// Only the attribute *substitutions* of `sas` are consulted — never their
/// consistency NIPs — so the result can be reused across why-not questions
/// that share the plan, the database, and the substitution sets (the trace
/// cache of `whynot-service` is keyed accordingly). The `consistent` flags of
/// the returned trace are placeholders; [`annotate_consistency`] fills them in
/// for a concrete question.
pub fn trace_plan_generalized(
    plan: &QueryPlan,
    db: &Database,
    sas: &[SchemaAlternative],
) -> AlgebraResult<GeneralizedTrace> {
    if sas.is_empty() {
        return Err(AlgebraError::Eval("at least one schema alternative is required".into()));
    }
    let _span = whynot_obs::span("trace_plan");
    let mut tracer =
        Tracer { db, sas, next_id: 1, traces: BTreeMap::new(), columnar: BTreeMap::new() };
    // Chunked loops below (and the join core underneath) raise guard trips
    // as panics; recover them into the error channel at the layer boundary.
    whynot_guard::catch_trip(|| tracer.trace_node(&plan.root))
        .unwrap_or_else(|trip| Err(AlgebraError::Resource(trip)))?;
    if whynot_obs::enabled() {
        whynot_obs::add(
            "trace.total_tuples",
            tracer.traces.values().map(|t| t.tuples.len() as u64).sum(),
        );
        whynot_obs::add("trace.sas", sas.len() as u64);
    }
    Ok(GeneralizedTrace {
        inner: TraceResult {
            traces: tracer.traces,
            root: plan.root.id,
            pre_order: plan.op_ids_top_down(),
            num_sas: sas.len(),
        },
    })
}

/// The cheap, question-specific part of tracing: re-validates every traced
/// tuple against the consistency NIPs of the schema alternatives (the
/// pushed-down why-not constraints produced by schema backtracing) and fills
/// in the `consistent` flags.
///
/// `sas` must describe the same substitution sets (in the same order) as the
/// ones `base` was traced under; only the consistency NIPs may differ.
pub fn annotate_consistency(
    base: &GeneralizedTrace,
    plan: &QueryPlan,
    sas: &[SchemaAlternative],
) -> TraceResult {
    // Per-operator annotation is independent work; each operator's tuples
    // are in turn annotated in parallel chunks. Only the outermost level
    // actually fans out (nested calls always serialize), so the per-tuple
    // level parallelizes exactly when the operator level ran serially
    // (e.g. a single-operator plan).
    let _span = whynot_obs::span("annotate");
    let entries: Vec<(OpId, &OpTrace)> = base.inner.traces.iter().map(|(op, t)| (*op, t)).collect();
    let annotated: Vec<OpTrace> = par_map(&entries, |(op, op_trace)| {
        let _span = whynot_obs::span_dyn(|| format!("annotate:{}#{}", op_trace.kind, op));
        let trace = annotate_op_consistency(op_trace, *op, plan, sas);
        if whynot_obs::enabled() {
            let compatible: u64 = trace
                .tuples
                .iter()
                .map(|t| t.flags.iter().filter(|f| f.valid && f.consistent).count() as u64)
                .sum();
            whynot_obs::add("trace.compatible", compatible);
        }
        trace
    });
    TraceResult {
        traces: entries.iter().map(|(op, _)| *op).zip(annotated).collect(),
        root: base.inner.root,
        pre_order: base.inner.pre_order.clone(),
        num_sas: base.inner.num_sas,
    }
}

/// Annotates one operator's trace: re-validates every tuple against the
/// consistency NIPs of the schema alternatives and fills in the `consistent`
/// flags.
fn annotate_op_consistency(
    base: &OpTrace,
    op: OpId,
    plan: &QueryPlan,
    sas: &[SchemaAlternative],
) -> OpTrace {
    let node = plan.node(op).ok();
    let is_group_agg = matches!(node.map(|n| &n.op), Some(Operator::GroupAggregation { .. }));
    let tuples = par_map(&base.tuples, |tuple| {
        let mut tuple = tuple.clone();
        for (sa_idx, sa) in sas.iter().enumerate() {
            let Some(flags) = tuple.flags.get_mut(sa_idx) else { continue };
            if !flags.valid {
                continue;
            }
            let Some(variant) = tuple.variants.get(sa_idx).and_then(Option::as_ref) else {
                continue;
            };
            flags.consistent = match sa.consistency_nip(op) {
                None => true,
                Some(nip) if is_group_agg => {
                    // Upper-bound constraints on aggregate outputs can
                    // always be met by a more restrictive choice of
                    // contributing tuples, which the tracing does not
                    // enumerate (Section 5.5); relax them, then accept the
                    // group if either the all-members aggregate or the
                    // retained-members fallback satisfies the NIP.
                    let node = node.expect("group aggregation node exists in plan");
                    let agg_outputs: Vec<String> = match sa.effective_operator(node) {
                        Operator::GroupAggregation { aggs, .. } => {
                            aggs.iter().map(|a| a.output.clone()).collect()
                        }
                        _ => Vec::new(),
                    };
                    let relaxed_nip = relax_aggregate_upper_bounds(nip, &agg_outputs);
                    nip_matches_tuple(&relaxed_nip, variant)
                        || tuple
                            .fallback_variants
                            .get(sa_idx)
                            .and_then(Option::as_ref)
                            .map(|f| nip_matches_tuple(&relaxed_nip, f))
                            .unwrap_or(false)
                }
                Some(nip) => nip_matches_tuple(nip, variant),
            };
        }
        tuple
    });
    OpTrace { op: base.op, kind: base.kind.clone(), tuples }
}

struct Tracer<'a> {
    db: &'a Database,
    sas: &'a [SchemaAlternative],
    next_id: u64,
    traces: BTreeMap<OpId, OpTrace>,
    /// Columnar passthrough: operators whose traced tuples are, under every
    /// schema alternative, exactly the rows of a columnar bag (tuple `i` ↔
    /// row `i`, every variant present and valid). Table accesses over
    /// wide-flat relations establish the mapping and selections preserve it
    /// (they annotate without transforming), so selection and aggregation
    /// tracing above a flat base relation read dense columns instead of
    /// scanning row tuples. Any transforming operator simply does not
    /// propagate the entry. Tracer-internal: the produced traces carry no
    /// columnar state and are bit-identical to the row-oriented ones.
    columnar: BTreeMap<OpId, Arc<ColumnarBag>>,
}

impl<'a> Tracer<'a> {
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn n_sas(&self) -> usize {
        self.sas.len()
    }

    /// The effective (SA-substituted) operator of a node, wrapped in a node
    /// that preserves the original children so schema inference still works.
    fn effective_node(&self, node: &OpNode, sa: usize) -> OpNode {
        OpNode::new(node.id, self.sas[sa].effective_operator(node), node.inputs.clone())
    }

    fn take_trace(&mut self, op: OpId) -> OpTrace {
        self.traces.remove(&op).expect("child trace must have been computed")
    }

    fn put_trace(&mut self, trace: OpTrace) {
        self.traces.insert(trace.op, trace);
    }

    fn trace_node(&mut self, node: &OpNode) -> AlgebraResult<()> {
        // Pipelined replay: a maximal run of 1:1 operators (selections and
        // structural transforms) ending at `node` is traced as one fused
        // morsel-driven pass over its source instead of one full per-op
        // replay each. The flag is read here, on the calling thread, before
        // any fan-out — pool workers only execute morsels of an
        // already-compiled chain.
        if pipelining_enabled() {
            let mut chain: Vec<&OpNode> = Vec::new();
            let mut cur = node;
            while tracer_fusable(&cur.op) {
                chain.push(cur);
                cur = &cur.inputs[0];
            }
            if !chain.is_empty() {
                self.trace_node(cur)?;
                chain.reverse(); // collected sink-to-source; replay wants source-to-sink
                return self.trace_chain(&chain, cur.id);
            }
        }
        for input in &node.inputs {
            self.trace_node(input)?;
        }
        self.trace_op(node)
    }

    /// Traces one operator whose children are already traced, with the
    /// per-operator bookkeeping (trace-tuple budget, observability counters).
    /// Shared by the operator-at-a-time recursion and the chain peeling of
    /// [`Self::trace_chain`].
    fn trace_op(&mut self, node: &OpNode) -> AlgebraResult<()> {
        let _span = whynot_obs::span_dyn(|| format!("trace:{}#{}", node.op.kind_name(), node.id));
        let trace = match &node.op {
            Operator::TableAccess { table } => self.trace_table_access(node, table)?,
            Operator::Selection { .. } => self.trace_selection(node)?,
            Operator::Flatten { .. } => self.trace_flatten(node)?,
            Operator::Join { .. } => self.trace_join(node)?,
            Operator::CrossProduct => self.trace_join(node)?,
            Operator::RelationNest { .. } => self.trace_relation_nest(node)?,
            Operator::GroupAggregation { .. } => self.trace_group_aggregation(node)?,
            Operator::Union => self.trace_union(node)?,
            Operator::Difference => self.trace_difference(node)?,
            // Projection, renaming, tuple flatten, tuple nesting, per-tuple
            // aggregation, and dedup are structural 1:1 operators.
            _ => self.trace_structural(node)?,
        };
        // Traced tuples are the paper's worst-case growth term; draw each
        // operator's count from the request's trace-tuple budget. Serial
        // post-order recursion, so consumption order is deterministic.
        whynot_guard::consume_trace_tuples(trace.tuples.len() as u64)
            .map_err(AlgebraError::from)?;
        record_trace_counters(&trace);
        self.put_trace(trace);
        Ok(())
    }

    /// Traces a maximal fused run of 1:1 operators (`ops`, in source-to-sink
    /// order) whose source operator is already traced.
    ///
    /// Selections at the bottom of the run that still see a columnar
    /// passthrough are peeled off to the mask-based [`Self::trace_selection`]
    /// path first — column-at-a-time predicate masks with cross-SA dedup beat
    /// per-row predicate evaluation, and a transforming operator above would
    /// end the passthrough anyway. Everything remaining replays as one
    /// morsel-driven pass in [`Self::trace_fused`].
    fn trace_chain(&mut self, ops: &[&OpNode], source: OpId) -> AlgebraResult<()> {
        let mut ops = ops;
        let mut child = source;
        while let Some((first, rest)) = ops.split_first() {
            if matches!(first.op, Operator::Selection { .. }) && self.columnar.contains_key(&child)
            {
                self.trace_op(first)?;
                child = first.id;
                ops = rest;
            } else {
                break;
            }
        }
        if ops.is_empty() {
            return Ok(());
        }
        self.trace_fused(ops)
    }

    /// Replays a fused run of selections and structural operators as one
    /// morsel-driven pass over the child's traced tuples: each ~1024-row
    /// morsel threads every tuple's per-SA variants through the whole chain
    /// on one worker, keeping them hot instead of materializing each
    /// operator's full trace before the next starts. Per-operator traces are
    /// then reassembled serially in chain order, so fresh ids, lineage,
    /// budget draws, and flags are bit-identical to the operator-at-a-time
    /// replay at any thread count.
    fn trace_fused(&mut self, ops: &[&OpNode]) -> AlgebraResult<()> {
        let _span = whynot_obs::span_dyn(|| {
            let (first, last) = (ops[0], ops[ops.len() - 1]);
            format!(
                "pipe:{}#{}..{}#{}",
                first.op.kind_name(),
                first.id,
                last.op.kind_name(),
                last.id
            )
        });
        let child_trace = self.take_trace(ops[0].inputs[0].id);
        let n = self.n_sas();
        // Compile each operator once per schema alternative: selection
        // predicates, and direct per-tuple transform contexts for the
        // structural operators (the schema-dependent parts of tuple flatten
        // resolve here, not once per tuple as the singleton-bag path does).
        let steps: Vec<FusedStep> = ops
            .iter()
            .map(|node| match &node.op {
                Operator::Selection { .. } => FusedStep::Select(
                    (0..n)
                        .map(|sa| match self.sas[sa].effective_operator(node) {
                            Operator::Selection { predicate } => predicate,
                            _ => Expr::lit(true),
                        })
                        .collect(),
                ),
                _ => FusedStep::Structural(
                    (0..n)
                        .map(|sa| StructuralCtx::compile(&self.effective_node(node, sa), self.db))
                        .collect(),
                ),
            })
            .collect();

        // Morsel pass: tuple-major, operator-inner. Guard draws mirror the
        // operator-at-a-time replay exactly — one checkpoint and one eval row
        // per structural application to a valid variant (selections only
        // annotate and draw nothing), and a failed draw makes the variant
        // vanish under that alternative, as the singleton-bag path degrades.
        let armed = whynot_guard::armed();
        type FusedRow = Vec<(Vec<Option<Tuple>>, Vec<SaFlags>)>;
        let chunks = columnar_chunks(child_trace.tuples.len());
        let per_morsel: Vec<Vec<FusedRow>> = par_map(&chunks, |range| {
            whynot_guard::enforce();
            child_trace.tuples[range.clone()]
                .iter()
                .map(|input| {
                    let mut state: Vec<(Option<Tuple>, bool)> = (0..n)
                        .map(|sa| (input.variant(sa).cloned(), input.flags(sa).valid))
                        .collect();
                    steps
                        .iter()
                        .map(|step| {
                            let mut variants = Vec::with_capacity(n);
                            let mut flags = Vec::with_capacity(n);
                            for (sa, (variant, valid)) in state.iter_mut().enumerate() {
                                match step {
                                    FusedStep::Select(predicates) => {
                                        let retained = variant
                                            .as_ref()
                                            .map(|t| *valid && predicates[sa].eval_bool(t))
                                            .unwrap_or(false);
                                        flags.push(base_flags(variant.as_ref(), *valid, retained));
                                        variants.push(variant.clone());
                                        *valid = *valid && variant.is_some();
                                    }
                                    FusedStep::Structural(ctxs) => {
                                        let transformed = match variant.as_ref() {
                                            Some(tuple) if *valid => {
                                                let allowed = !armed
                                                    || (whynot_guard::checkpoint().is_ok()
                                                        && whynot_guard::consume_eval_rows(1)
                                                            .is_ok());
                                                if allowed {
                                                    ctxs[sa].apply(tuple)
                                                } else {
                                                    None
                                                }
                                            }
                                            _ => None,
                                        };
                                        flags.push(base_flags(transformed.as_ref(), *valid, true));
                                        *valid = transformed.is_some();
                                        variants.push(transformed.clone());
                                        *variant = transformed;
                                    }
                                }
                            }
                            (variants, flags)
                        })
                        .collect()
                })
                .collect()
        });

        // Serial reassembly, operator by operator in chain order: fresh ids,
        // lineage to the previous stage, trace-tuple budget draws, and
        // per-operator observability counters — all exactly as the unfused
        // post-order recursion would have produced them.
        let mut rows: Vec<FusedRow> = per_morsel.into_iter().flatten().collect();
        let mut prev_ids: Vec<u64> = child_trace.tuples.iter().map(|t| t.id).collect();
        for (k, node) in ops.iter().enumerate() {
            let mut tuples = Vec::with_capacity(rows.len());
            let mut ids = Vec::with_capacity(rows.len());
            for (row, prev) in rows.iter_mut().zip(&prev_ids) {
                let (variants, flags) = std::mem::take(&mut row[k]);
                let id = self.fresh_id();
                ids.push(id);
                tuples.push(TracedTuple::new(id, variants, flags, vec![vec![*prev]; n]));
            }
            prev_ids = ids;
            let trace = OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples };
            whynot_guard::consume_trace_tuples(trace.tuples.len() as u64)
                .map_err(AlgebraError::from)?;
            record_trace_counters(&trace);
            self.put_trace(trace);
        }
        self.put_trace(child_trace);
        Ok(())
    }

    fn trace_table_access(&mut self, node: &OpNode, table: &str) -> AlgebraResult<OpTrace> {
        let bag = self.db.relation(table)?.clone();
        // Wide flat relations establish a columnar passthrough: traced tuple
        // `i` is (under every SA) row `i` of the cached columnar form.
        if let Some(cols) = bag.columnar() {
            self.columnar.insert(node.id, cols);
        }
        let mut tuples = Vec::with_capacity(bag.distinct());
        for (value, _mult) in bag.iter() {
            let tuple = value.as_tuple().cloned().unwrap_or_else(Tuple::empty);
            let id = self.fresh_id();
            let variants = vec![Some(tuple.clone()); self.n_sas()];
            let flags = (0..self.n_sas()).map(|_| base_flags(Some(&tuple), true, true)).collect();
            tuples.push(TracedTuple::new(id, variants, flags, vec![Vec::new(); self.n_sas()]));
        }
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    /// Structural 1:1 operators: apply the effective operator to each variant
    /// individually; `retained` is always true (these operators never prune).
    fn trace_structural(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let child = &node.inputs[0];
        let child_trace = self.take_trace(child.id);
        let effective: Vec<OpNode> =
            (0..self.n_sas()).map(|sa| self.effective_node(node, sa)).collect();

        // The per-tuple evaluation is the expensive part; fan it out and
        // assign the fresh ids in a serial pass so they match the serial
        // trace exactly.
        let db = self.db;
        let n = self.n_sas();
        type StructuralRow = (Vec<Option<Tuple>>, Vec<SaFlags>);
        let computed: Vec<AlgebraResult<StructuralRow>> = par_map(&child_trace.tuples, |input| {
            let mut variants = Vec::with_capacity(n);
            let mut flags = Vec::with_capacity(n);
            for (sa, effective_node) in effective.iter().enumerate() {
                let input_flags = input.flags(sa);
                let transformed = match input.variant(sa) {
                    Some(tuple) if input_flags.valid => apply_to_single(effective_node, tuple, db)?,
                    _ => None,
                };
                flags.push(base_flags(transformed.as_ref(), input_flags.valid, true));
                variants.push(transformed);
            }
            Ok((variants, flags))
        });
        let mut tuples = Vec::with_capacity(child_trace.tuples.len());
        for (input, row) in child_trace.tuples.iter().zip(computed) {
            let (variants, flags) = row?;
            tuples.push(TracedTuple::new(
                self.fresh_id(),
                variants,
                flags,
                vec![vec![input.id]; n],
            ));
        }
        self.put_trace(child_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    /// Selection: annotate instead of filter. `retained` records whether the
    /// original (SA-substituted) predicate holds.
    fn trace_selection(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let child = &node.inputs[0];
        let child_trace = self.take_trace(child.id);
        let predicates: Vec<Expr> = (0..self.n_sas())
            .map(|sa| match self.sas[sa].effective_operator(node) {
                Operator::Selection { predicate } => predicate,
                _ => Expr::lit(true),
            })
            .collect();

        let n = self.n_sas();
        let child_cols = self.columnar.get(&child.id).cloned();
        type SelectionRow = (Vec<Option<Tuple>>, Vec<SaFlags>);
        let computed: Vec<SelectionRow> = if let Some(cols) = &child_cols {
            // Columnar fast path: the child is a columnar passthrough (tuple
            // `i`'s variant under every SA is row `i`, present and valid), so
            // each SA's retained flags are one column-at-a-time predicate
            // mask, evaluated over per-chunk column slices on the pool.
            debug_assert_eq!(cols.rows(), child_trace.tuples.len());
            // SAs that did not substitute into the selection share its
            // predicate; evaluate each distinct predicate once.
            let mut masks: Vec<Vec<bool>> = Vec::with_capacity(predicates.len());
            for (sa, predicate) in predicates.iter().enumerate() {
                match predicates[..sa].iter().position(|p| p == predicate) {
                    Some(prev) => masks.push(masks[prev].clone()),
                    None => masks.push(columnar_mask(cols, predicate)),
                }
            }
            child_trace
                .tuples
                .iter()
                .enumerate()
                .map(|(i, input)| selection_row(n, input, |sa, _| masks[sa][i]))
                .collect()
        } else {
            par_map(&child_trace.tuples, |input| {
                selection_row(n, input, |sa, t| predicates[sa].eval_bool(t))
            })
        };
        let mut tuples = Vec::with_capacity(child_trace.tuples.len());
        for (input, (variants, flags)) in child_trace.tuples.iter().zip(computed) {
            tuples.push(TracedTuple::new(
                self.fresh_id(),
                variants,
                flags,
                vec![vec![input.id]; n],
            ));
        }
        self.put_trace(child_trace);
        // A selection only annotates, so its output rows still mirror the
        // child's columnar form: keep the passthrough alive for operators
        // above (selection chains, aggregations).
        if let Some(cols) = child_cols {
            self.columnar.insert(node.id, cols);
        }
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    /// Relation flatten, generalized to an outer flatten.
    fn trace_flatten(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let child = &node.inputs[0];
        let child_schema = output_type(child, self.db)?;
        let child_trace = self.take_trace(child.id);

        let (original_kind, alias) = match &node.op {
            Operator::Flatten { kind, alias, .. } => (*kind, alias.clone()),
            _ => unreachable!("trace_flatten called on non-flatten"),
        };
        // Per SA: the attribute actually flattened.
        let attrs: Vec<String> = (0..self.n_sas())
            .map(|sa| match self.sas[sa].effective_operator(node) {
                Operator::Flatten { attr, .. } => attr,
                _ => unreachable!(),
            })
            .collect();

        // Per input tuple and SA, the list of (tuple, retained) the outer
        // flatten produces — computed in parallel, merged serially below.
        let n = self.n_sas();
        // Per SA, the `(tuple, retained)` rows one input produces.
        type FlattenRows = Vec<Vec<(Tuple, bool)>>;
        let computed: Vec<AlgebraResult<FlattenRows>> = par_map(&child_trace.tuples, |input| {
            let mut per_sa: FlattenRows = Vec::with_capacity(n);
            for (sa, attr) in attrs.iter().enumerate() {
                let input_flags = input.flags(sa);
                let outputs = match input.variant(sa) {
                    Some(tuple) if input_flags.valid => {
                        flatten_one(tuple, attr, alias.as_deref(), original_kind, &child_schema)?
                    }
                    _ => Vec::new(),
                };
                per_sa.push(outputs);
            }
            Ok(per_sa)
        });
        let mut tuples = Vec::new();
        for (input, per_sa) in child_trace.tuples.iter().zip(computed) {
            let per_sa = per_sa?;
            let width = per_sa.iter().map(Vec::len).max().unwrap_or(0);
            for k in 0..width {
                let id = self.fresh_id();
                let mut variants = Vec::with_capacity(self.n_sas());
                let mut flags = Vec::with_capacity(self.n_sas());
                for outputs in per_sa.iter() {
                    match outputs.get(k) {
                        Some((tuple, retained)) => {
                            flags.push(base_flags(Some(tuple), true, *retained));
                            variants.push(Some(tuple.clone()));
                        }
                        None => {
                            flags.push(SaFlags::absent());
                            variants.push(None);
                        }
                    }
                }
                tuples.push(TracedTuple::new(
                    id,
                    variants,
                    flags,
                    vec![vec![input.id]; self.n_sas()],
                ));
            }
        }
        self.put_trace(child_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    /// Joins (and cross products), generalized to full outer joins.
    ///
    /// The pairing itself — partitioned hash join on the equi conjuncts with
    /// a parallel nested-loop fallback — is `nrab_algebra::join`, the same
    /// core the evaluator's join runs on; tracing adds the per-SA fan-out,
    /// the columnar key extraction over passthrough children, and the
    /// outer-join generalization below.
    fn trace_join(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let left_node = &node.inputs[0];
        let right_node = &node.inputs[1];
        let left_schema = output_type(left_node, self.db)?;
        let right_schema = output_type(right_node, self.db)?;
        let left_trace = self.take_trace(left_node.id);
        let right_trace = self.take_trace(right_node.id);

        let original_kind = match &node.op {
            Operator::Join { kind, .. } => *kind,
            Operator::CrossProduct => JoinKind::Inner,
            _ => unreachable!("trace_join called on non-join"),
        };
        let predicates: Vec<Expr> = (0..self.n_sas())
            .map(|sa| match self.sas[sa].effective_operator(node) {
                Operator::Join { predicate, .. } => predicate,
                Operator::CrossProduct => Expr::lit(true),
                _ => Expr::lit(true),
            })
            .collect();

        // Columnar passthrough children expose their key columns to the join
        // core (tuple `i` of the trace is row `i` of the columnar form under
        // every SA, so per-SA key extraction may read the shared columns).
        let left_cols = self.columnar.get(&left_node.id).cloned();
        let right_cols = self.columnar.get(&right_node.id).cloned();
        // The hash-join decision is resolved once, on the calling thread:
        // the per-SA closures below may run on pool workers whose
        // thread-local flag was never touched by `with_hash_join`.
        let use_hash = hash_join_enabled();

        // Schema alternatives whose substitutions leave the right subtree
        // untouched (and whose effective predicates split into the same
        // right key paths) join *identical* right rows: their hash tables
        // are equal, so build once per distinct group and share it across
        // the group's probes. Signature = the alternative's substitutions
        // restricted to right-subtree operators, plus the right key paths.
        let right_rows_of = |sa: usize| -> Vec<Option<&Tuple>> {
            right_trace
                .tuples
                .iter()
                .map(|t| if t.flags(sa).valid { t.variant(sa) } else { None })
                .collect()
        };
        let equis: Vec<Option<EquiJoin>> = predicates
            .iter()
            .map(|p| use_hash.then(|| split_equi_join(p, &left_schema, &right_schema)).flatten())
            .collect();
        let mut right_ops = std::collections::BTreeSet::new();
        collect_subtree_ops(right_node, &mut right_ops);
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (sa, equi) in equis.iter().enumerate() {
            let Some(equi) = equi else { continue };
            use std::fmt::Write;
            let mut signature = String::new();
            for substitution in &self.sas[sa].substitutions {
                if right_ops.contains(&substitution.op) {
                    let _ = write!(signature, "{substitution};");
                }
            }
            for key in &equi.right_keys {
                let _ = write!(signature, "|{key}");
            }
            groups.entry(signature).or_default().push(sa);
        }
        let mut build_for_sa: Vec<Option<Arc<JoinBuild>>> = vec![None; self.n_sas()];
        for members in groups.values() {
            let representative = members[0];
            let right_side =
                JoinSide::new(right_rows_of(representative)).with_columns(right_cols.as_deref());
            let build = Arc::new(JoinBuild::build(
                &right_side,
                &equis[representative]
                    .as_ref()
                    .expect("grouped SAs have equi structure")
                    .right_keys,
            ));
            for &sa in members {
                build_for_sa[sa] = Some(Arc::clone(&build));
            }
        }

        // The per-SA join passes are independent, and within one SA the join
        // core chunks build and probe over the pool, too. Only the outermost
        // parallel call fans out (nested calls always serialize): with
        // several SAs the SA level owns the threads and the per-SA joins run
        // serially inside it; with a single SA the SA level is a no-op and
        // the core's build/probe level parallelizes instead. Matches are
        // folded in (left, right) order, so the pair list is identical to
        // the serial nested loop.
        let per_sa: Vec<JoinMatches> = par_map_range(0..self.n_sas(), |sa| {
            let _span = whynot_obs::span_dyn(|| format!("sa#{sa}"));
            whynot_guard::faults::fault_point_dyn("trace_sa", || sa.to_string());
            whynot_guard::enforce();
            let left_rows: Vec<Option<&Tuple>> = left_trace
                .tuples
                .iter()
                .map(|t| if t.flags(sa).valid { t.variant(sa) } else { None })
                .collect();
            let left_side = JoinSide::new(left_rows).with_columns(left_cols.as_deref());
            let right_side = JoinSide::new(right_rows_of(sa)).with_columns(right_cols.as_deref());
            match (&equis[sa], &build_for_sa[sa]) {
                (Some(equi), Some(build)) => {
                    join_matches_probe(&left_side, &right_side, equi, build)
                }
                _ => join_matches_with(
                    &left_side,
                    &right_side,
                    &predicates[sa],
                    &left_schema,
                    &right_schema,
                    use_hash,
                ),
            }
        });

        // Merge across SAs, keyed by (left id, right id) with None for padding.
        #[derive(Default, Clone)]
        struct Slot {
            per_sa: Vec<Option<(Tuple, bool)>>,
        }
        let mut slots: BTreeMap<(Option<u64>, Option<u64>), Slot> = BTreeMap::new();
        let n = self.n_sas();
        fn slot_for(
            slots: &mut BTreeMap<(Option<u64>, Option<u64>), Slot>,
            key: (Option<u64>, Option<u64>),
            n: usize,
        ) -> &mut Slot {
            slots.entry(key).or_insert_with(|| Slot { per_sa: vec![None; n] })
        }
        let left_names: Vec<nested_data::Sym> = left_schema.attribute_syms().collect();
        let right_names: Vec<nested_data::Sym> = right_schema.attribute_syms().collect();
        for (sa, state) in per_sa.iter().enumerate() {
            for pair in &state.pairs {
                let lt = &left_trace.tuples[pair.left];
                let rt = &right_trace.tuples[pair.right];
                let slot = slot_for(&mut slots, (Some(lt.id), Some(rt.id)), n);
                slot.per_sa[sa] = Some((pair.combined.clone(), true));
            }
            for (li, lt) in left_trace.tuples.iter().enumerate() {
                if lt.flags(sa).valid && !state.left_matched[li] {
                    let padded =
                        lt.variant(sa).unwrap().concat(&Tuple::null_padded(&right_names))?;
                    let retained = matches!(original_kind, JoinKind::Left | JoinKind::Full);
                    let slot = slot_for(&mut slots, (Some(lt.id), None), n);
                    slot.per_sa[sa] = Some((padded, retained));
                }
            }
            for (ri, rt) in right_trace.tuples.iter().enumerate() {
                if rt.flags(sa).valid && !state.right_matched[ri] {
                    let padded = Tuple::null_padded(&left_names).concat(rt.variant(sa).unwrap())?;
                    let retained = matches!(original_kind, JoinKind::Right | JoinKind::Full);
                    let slot = slot_for(&mut slots, (None, Some(rt.id)), n);
                    slot.per_sa[sa] = Some((padded, retained));
                }
            }
        }

        let mut tuples = Vec::with_capacity(slots.len());
        for ((lid, rid), slot) in slots {
            let id = self.fresh_id();
            let mut variants = Vec::with_capacity(n);
            let mut flags = Vec::with_capacity(n);
            let mut inputs = Vec::with_capacity(n);
            let pair_ids: Vec<u64> = [lid, rid].into_iter().flatten().collect();
            for sa in 0..n {
                match &slot.per_sa[sa] {
                    Some((tuple, retained)) => {
                        flags.push(base_flags(Some(tuple), true, *retained));
                        variants.push(Some(tuple.clone()));
                        inputs.push(pair_ids.clone());
                    }
                    None => {
                        flags.push(SaFlags::absent());
                        variants.push(None);
                        inputs.push(Vec::new());
                    }
                }
            }
            tuples.push(TracedTuple::new(id, variants, flags, inputs));
        }
        self.put_trace(left_trace);
        self.put_trace(right_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    /// Relation nesting: group valid tuples per SA and merge group keys across
    /// SAs with an outer-join-like combination (Figure 7, step 4).
    fn trace_relation_nest(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let child = &node.inputs[0];
        let child_trace = self.take_trace(child.id);
        let n = self.n_sas();

        // Per-SA grouping passes are independent: each SA builds its own
        // key → (nested bag, member ids) map in parallel; the maps are then
        // merged over the union of keys — the outer-join-like combination of
        // Figure 7, step 4 — in SA order, which reproduces the serial result
        // exactly (B-tree maps are insertion-order insensitive).
        #[allow(clippy::mutable_key_type)] // cached hashes don't affect `Ord`
        type SaGroups = BTreeMap<Value, (Bag, Vec<u64>)>;
        let sas = self.sas;
        let per_sa_groups: Vec<(SaGroups, String)> = par_map_range(0..n, |sa| {
            let _span = whynot_obs::span_dyn(|| format!("sa#{sa}"));
            let (attrs, into) = match sas[sa].effective_operator(node) {
                Operator::RelationNest { attrs, into } => (attrs, into),
                _ => unreachable!("trace_relation_nest called on non-nest"),
            };
            let attr_refs: Vec<nested_data::Sym> =
                attrs.iter().map(|a| nested_data::Sym::intern(a)).collect();
            #[allow(clippy::mutable_key_type)]
            let mut sa_groups: SaGroups = BTreeMap::new();
            for input in &child_trace.tuples {
                let Some(tuple) = input.variant(sa) else { continue };
                if !input.flags(sa).valid {
                    continue;
                }
                let key = Value::from_tuple(tuple.without(&attr_refs));
                let entry = sa_groups.entry(key).or_insert_with(|| (Bag::new(), Vec::new()));
                if let Ok(projected) = tuple.project(&attr_refs) {
                    if projected.fields().iter().any(|(_, v)| !v.is_null()) {
                        entry.0.insert(Value::from_tuple(projected), 1);
                    }
                }
                if !entry.1.contains(&input.id) {
                    entry.1.push(input.id);
                }
            }
            (sa_groups, into)
        });

        #[allow(clippy::mutable_key_type)]
        let mut groups: BTreeMap<Value, GroupSlot> = BTreeMap::new();
        for (sa, (sa_groups, into)) in per_sa_groups.into_iter().enumerate() {
            for (key, (bag, member_ids)) in sa_groups {
                let slot = groups.entry(key).or_insert_with(|| GroupSlot {
                    per_sa: vec![None; n],
                    member_ids: vec![Vec::new(); n],
                });
                slot.per_sa[sa] = Some((bag, into.clone()));
                slot.member_ids[sa] = member_ids;
            }
        }

        let mut tuples = Vec::with_capacity(groups.len());
        for (key, slot) in groups {
            let key_tuple = key.as_tuple().cloned().unwrap_or_else(Tuple::empty);
            let id = self.fresh_id();
            let mut variants = Vec::with_capacity(n);
            let mut flags = Vec::with_capacity(n);
            for sa in 0..n {
                match &slot.per_sa[sa] {
                    Some((bag, into)) => {
                        let tuple =
                            key_tuple.with_field(into.as_str(), Value::from_bag(bag.clone()));
                        flags.push(base_flags(Some(&tuple), true, true));
                        variants.push(Some(tuple));
                    }
                    None => {
                        flags.push(SaFlags::absent());
                        variants.push(None);
                    }
                }
            }
            tuples.push(TracedTuple::new(id, variants, flags, slot.member_ids));
        }
        self.put_trace(child_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    /// Grouped aggregation: like relation nesting, but each group contributes
    /// aggregate values. Consistency is checked against the aggregates
    /// computed from all valid tuples and, as a fallback, from the tuples the
    /// immediately preceding operator retained (cf. the discussion of
    /// aggregation tracing limitations in Section 5.5).
    fn trace_group_aggregation(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let child = &node.inputs[0];
        let child_trace = self.take_trace(child.id);
        let n = self.n_sas();

        // Like relation nesting: independent per-SA grouping passes in
        // parallel, merged over the union of group keys in SA order.
        #[allow(clippy::mutable_key_type)] // cached hashes don't affect `Ord`
        type SaAggGroups = BTreeMap<Value, (AggGroupSa, Vec<u64>)>;
        let sas = self.sas;
        let child_cols = self.columnar.get(&child.id).cloned();
        let per_sa_groups: Vec<SaAggGroups> = par_map_range(0..n, |sa| {
            let _span = whynot_obs::span_dyn(|| format!("sa#{sa}"));
            let (group_by, aggs) = match sas[sa].effective_operator(node) {
                Operator::GroupAggregation { group_by, aggs } => (group_by, aggs),
                _ => unreachable!("trace_group_aggregation called on non-aggregation"),
            };
            let group_refs: Vec<nested_data::Sym> =
                group_by.iter().map(|a| nested_data::Sym::intern(a)).collect();
            // Columnar group keys: when the child is a columnar passthrough
            // and every grouping attribute is one of its columns, the group
            // key of row `i` is assembled from dense typed columns instead of
            // per-row field scans — identical to `tuple.project(group_refs)`.
            let key_cols: Option<Vec<&Column>> = child_cols.as_ref().and_then(|cols| {
                debug_assert_eq!(cols.rows(), child_trace.tuples.len());
                group_refs.iter().map(|s| cols.column(*s)).collect()
            });
            #[allow(clippy::mutable_key_type)]
            let mut sa_groups: SaAggGroups = BTreeMap::new();
            for (i, input) in child_trace.tuples.iter().enumerate() {
                let Some(tuple) = input.variant(sa) else { continue };
                if !input.flags(sa).valid {
                    continue;
                }
                let key = match &key_cols {
                    Some(cols) => Value::from_tuple(Tuple::new(
                        group_refs.iter().zip(cols.iter()).map(|(s, col)| (*s, col.value(i))),
                    )),
                    None => Value::from_tuple(
                        tuple.project(&group_refs).unwrap_or_else(|_| Tuple::empty()),
                    ),
                };
                let (entry, member_ids) = sa_groups.entry(key).or_insert_with(|| {
                    (
                        AggGroupSa {
                            aggs: aggs.clone(),
                            all_members: Vec::new(),
                            retained_members: Vec::new(),
                        },
                        Vec::new(),
                    )
                });
                entry.all_members.push(tuple.clone());
                if input.flags(sa).retained {
                    entry.retained_members.push(tuple.clone());
                }
                if !member_ids.contains(&input.id) {
                    member_ids.push(input.id);
                }
            }
            sa_groups
        });

        // See above: the cached structural hash does not affect ordering.
        #[allow(clippy::mutable_key_type)]
        let mut groups: BTreeMap<Value, AggGroupSlot> = BTreeMap::new();
        for (sa, sa_groups) in per_sa_groups.into_iter().enumerate() {
            for (key, (group, member_ids)) in sa_groups {
                let slot = groups.entry(key).or_insert_with(|| AggGroupSlot {
                    per_sa: (0..n).map(|_| None).collect(),
                    member_ids: vec![Vec::new(); n],
                });
                slot.per_sa[sa] = Some(group);
                slot.member_ids[sa] = member_ids;
            }
        }

        // The per-group aggregate evaluation is independent across groups;
        // fresh ids are assigned serially afterwards in key order, exactly
        // like the serial loop.
        let group_list: Vec<(Value, AggGroupSlot)> = groups.into_iter().collect();
        type AggRow = (Vec<Option<Tuple>>, Vec<SaFlags>, Vec<Option<Tuple>>);
        let computed: Vec<AggRow> = par_map(&group_list, |(key, slot)| {
            let key_tuple = key.as_tuple().cloned().unwrap_or_else(Tuple::empty);
            let mut variants = Vec::with_capacity(n);
            let mut flags = Vec::with_capacity(n);
            let mut fallbacks = Vec::with_capacity(n);
            for sa in 0..n {
                match &slot.per_sa[sa] {
                    Some(group) => {
                        let relaxed = aggregate_tuple(&key_tuple, &group.aggs, &group.all_members);
                        let retained_only =
                            aggregate_tuple(&key_tuple, &group.aggs, &group.retained_members);
                        // The original query would produce the group from the
                        // retained members only; the group survives if any
                        // member was retained. The retained-members aggregate
                        // is kept as the fallback variant consulted by the
                        // consistency annotation (Section 5.5).
                        let retained = !group.retained_members.is_empty();
                        flags.push(SaFlags { valid: true, consistent: false, retained });
                        variants.push(Some(relaxed));
                        fallbacks.push(Some(retained_only));
                    }
                    None => {
                        flags.push(SaFlags::absent());
                        variants.push(None);
                        fallbacks.push(None);
                    }
                }
            }
            (variants, flags, fallbacks)
        });
        let mut tuples = Vec::with_capacity(group_list.len());
        for ((_, slot), (variants, flags, fallbacks)) in group_list.into_iter().zip(computed) {
            tuples.push(TracedTuple::with_fallbacks(
                self.fresh_id(),
                variants,
                flags,
                slot.member_ids,
                fallbacks,
            ));
        }
        self.put_trace(child_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    fn trace_union(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let left_trace = self.take_trace(node.inputs[0].id);
        let right_trace = self.take_trace(node.inputs[1].id);
        let mut tuples = Vec::with_capacity(left_trace.tuples.len() + right_trace.tuples.len());
        for input in left_trace.tuples.iter().chain(right_trace.tuples.iter()) {
            let id = self.fresh_id();
            let mut variants = Vec::with_capacity(self.n_sas());
            let mut flags = Vec::with_capacity(self.n_sas());
            for sa in 0..self.n_sas() {
                let variant = input.variant(sa).cloned();
                flags.push(base_flags(variant.as_ref(), input.flags(sa).valid, true));
                variants.push(variant);
            }
            tuples.push(TracedTuple::new(id, variants, flags, vec![vec![input.id]; self.n_sas()]));
        }
        self.put_trace(left_trace);
        self.put_trace(right_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }

    fn trace_difference(&mut self, node: &OpNode) -> AlgebraResult<OpTrace> {
        let left_trace = self.take_trace(node.inputs[0].id);
        let right_trace = self.take_trace(node.inputs[1].id);
        // The right-side membership probe is the quadratic part; fan the
        // left tuples out over the pool.
        let n = self.n_sas();
        type DifferenceRow = (Vec<Option<Tuple>>, Vec<SaFlags>);
        let computed: Vec<DifferenceRow> = par_map(&left_trace.tuples, |input| {
            let mut variants = Vec::with_capacity(n);
            let mut flags = Vec::with_capacity(n);
            for sa in 0..n {
                let variant = input.variant(sa).cloned();
                let subtracted = variant.as_ref().map(|t| {
                    right_trace.tuples.iter().any(|r| {
                        r.flags(sa).valid && r.variant(sa).map(|rt| rt == t).unwrap_or(false)
                    })
                });
                let retained = matches!(subtracted, Some(false));
                flags.push(base_flags(variant.as_ref(), input.flags(sa).valid, retained));
                variants.push(variant);
            }
            (variants, flags)
        });
        let mut tuples = Vec::with_capacity(left_trace.tuples.len());
        for (input, (variants, flags)) in left_trace.tuples.iter().zip(computed) {
            tuples.push(TracedTuple::new(
                self.fresh_id(),
                variants,
                flags,
                vec![vec![input.id]; n],
            ));
        }
        self.put_trace(left_trace);
        self.put_trace(right_trace);
        Ok(OpTrace { op: node.id, kind: node.op.kind_name().to_string(), tuples })
    }
}

struct GroupSlot {
    per_sa: Vec<Option<(Bag, String)>>,
    member_ids: Vec<Vec<u64>>,
}

struct AggGroupSa {
    aggs: Vec<nrab_algebra::AggSpec>,
    all_members: Vec<Tuple>,
    retained_members: Vec<Tuple>,
}

struct AggGroupSlot {
    per_sa: Vec<Option<AggGroupSa>>,
    member_ids: Vec<Vec<u64>>,
}

/// Replaces upper-bound leaf constraints (`<`, `≤`) on aggregate output
/// attributes by `?`, since dropping contributing tuples can always lower an
/// aggregate of non-negative inputs.
fn relax_aggregate_upper_bounds(nip: &Nip, agg_outputs: &[String]) -> Nip {
    match nip {
        Nip::Tuple(fields) => Nip::Tuple(
            fields
                .iter()
                .map(|(name, field)| {
                    let relaxed = if agg_outputs.iter().any(|o| *name == o.as_str()) {
                        match field {
                            Nip::Pred(nested_data::NipCmp::Lt | nested_data::NipCmp::Le, _) => {
                                Nip::Any
                            }
                            other => other.clone(),
                        }
                    } else {
                        field.clone()
                    };
                    (*name, relaxed)
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Assembles one traced selection tuple's per-SA variants and flags. The
/// columnar and row-oriented paths differ only in how `retained` is decided
/// (a precomputed column mask vs. a per-tuple predicate evaluation), so both
/// share this loop — keeping their outputs structurally identical by
/// construction.
fn selection_row(
    n: usize,
    input: &TracedTuple,
    retained: impl Fn(usize, &Tuple) -> bool,
) -> (Vec<Option<Tuple>>, Vec<SaFlags>) {
    let mut variants = Vec::with_capacity(n);
    let mut flags = Vec::with_capacity(n);
    for sa in 0..n {
        let input_flags = input.flags(sa);
        let variant = input.variant(sa).cloned();
        let is_retained =
            variant.as_ref().map(|t| input_flags.valid && retained(sa, t)).unwrap_or(false);
        flags.push(base_flags(variant.as_ref(), input_flags.valid, is_retained));
        variants.push(variant);
    }
    (variants, flags)
}

/// Builds the question-independent flags of a variant: validity is inherited
/// from the input, `retained` is provided by the operator-specific tracing
/// procedure, and `consistent` is a placeholder that [`annotate_consistency`]
/// fills in per question.
fn base_flags(variant: Option<&Tuple>, input_valid: bool, retained: bool) -> SaFlags {
    match variant {
        Some(_) if input_valid => SaFlags { valid: true, consistent: false, retained },
        _ => SaFlags::absent(),
    }
}

/// Records the per-operator trace counters when a profiling session is
/// active. Shared by the operator-at-a-time recursion and the fused replay so
/// counter totals are identical either way.
fn record_trace_counters(trace: &OpTrace) {
    if !whynot_obs::enabled() {
        return;
    }
    whynot_obs::add("trace.tuples", trace.tuples.len() as u64);
    let (mut valid, mut retained) = (0u64, 0u64);
    for tuple in &trace.tuples {
        for flags in &tuple.flags {
            valid += flags.valid as u64;
            retained += (flags.valid && flags.retained) as u64;
        }
    }
    whynot_obs::add("trace.valid", valid);
    whynot_obs::add("trace.retained", retained);
}

/// Collects every operator id of a plan subtree (used to decide which
/// schema-alternative substitutions can affect a join's right side).
fn collect_subtree_ops(node: &OpNode, out: &mut std::collections::BTreeSet<OpId>) {
    out.insert(node.id);
    for input in &node.inputs {
        collect_subtree_ops(input, out);
    }
}

/// Operators the tracer can fuse into one morsel-driven replay: the 1:1
/// operators whose trace row `i` depends only on row `i` of their child —
/// selections (which annotate without transforming) and the structural
/// transforms. Joins, cross products, relation flatten, relation nest,
/// grouped aggregation, union, and difference mix rows and always break a
/// tracer pipeline.
fn tracer_fusable(op: &Operator) -> bool {
    matches!(
        op,
        Operator::Selection { .. }
            | Operator::Projection { .. }
            | Operator::Rename { .. }
            | Operator::TupleFlatten { .. }
            | Operator::TupleNest { .. }
            | Operator::NestAggregation { .. }
            | Operator::Dedup
    )
}

/// One operator of a fused tracer chain, compiled once per schema
/// alternative before the morsel pass.
enum FusedStep {
    /// Per-SA selection predicates (annotate-only: variants pass through).
    Select(Vec<Expr>),
    /// Per-SA structural transform contexts.
    Structural(Vec<StructuralCtx>),
}

/// A structural 1:1 operator compiled to a direct per-tuple transform with
/// the same semantics — including the same error-to-`None` degradation — as
/// evaluating the operator over a singleton bag via [`apply_to_single`], but
/// without the per-tuple bag construction, schema inference, and operator
/// dispatch.
enum StructuralCtx {
    /// π: evaluate each output column against the input tuple.
    Project { names: Vec<Sym>, columns: Vec<ProjColumn> },
    /// ρ: rename attributes.
    Rename { mapping: Vec<(Sym, Sym)> },
    /// Fᵀ: splice (or alias) the tuple value at `source` into the row.
    TupleFlatten { source: AttrPath, alias: Option<Sym>, source_ty: Option<NestedType> },
    /// νᵀ: fold `attrs` into the nested tuple `into`.
    TupleNest { attrs: Vec<Sym>, into: Sym },
    /// γᵀ: aggregate the nested collection at `attr` into `output`.
    NestAgg { func: AggFunc, attr: Sym, field: Option<Sym>, output: Sym },
    /// δ: identity on a single variant.
    Dedup,
    /// The operator fails outright under this alternative (e.g. a tuple
    /// flatten whose input schema does not infer): every variant maps to
    /// `None`, exactly as the singleton-bag path degrades.
    Broken,
}

impl StructuralCtx {
    fn compile(node: &OpNode, db: &Database) -> StructuralCtx {
        match &node.op {
            Operator::Projection { columns } => StructuralCtx::Project {
                names: columns.iter().map(|c| Sym::intern(&c.name)).collect(),
                columns: columns.clone(),
            },
            Operator::Rename { pairs } => StructuralCtx::Rename {
                mapping: pairs.iter().map(|p| (Sym::intern(&p.from), Sym::intern(&p.to))).collect(),
            },
            Operator::TupleFlatten { source, alias } => match output_type(&node.inputs[0], db) {
                Ok(schema) => StructuralCtx::TupleFlatten {
                    source_ty: schema.resolve_path(source).ok().cloned(),
                    source: source.clone(),
                    alias: alias.as_deref().map(Sym::intern),
                },
                Err(_) => StructuralCtx::Broken,
            },
            Operator::TupleNest { attrs, into } => StructuralCtx::TupleNest {
                attrs: attrs.iter().map(|a| Sym::intern(a)).collect(),
                into: Sym::intern(into),
            },
            Operator::NestAggregation { func, attr, field, output } => StructuralCtx::NestAgg {
                func: *func,
                attr: Sym::intern(attr),
                field: field.as_deref().map(Sym::intern),
                output: Sym::intern(output),
            },
            Operator::Dedup => StructuralCtx::Dedup,
            _ => unreachable!("non-structural operator in a fused tracer chain"),
        }
    }

    /// Applies the transform to one valid variant; `None` means the tuple
    /// does not exist under the alternative (a transform error).
    fn apply(&self, tuple: &Tuple) -> Option<Tuple> {
        match self {
            StructuralCtx::Project { names, columns } => Some(Tuple::new(
                names.iter().zip(columns.iter()).map(|(name, c)| (*name, c.expr.eval(tuple))),
            )),
            StructuralCtx::Rename { mapping } => Some(tuple.rename(mapping)),
            StructuralCtx::TupleFlatten { source, alias, source_ty } => {
                let extracted = tuple.get_path(source).unwrap_or(Value::Null);
                match alias {
                    Some(alias) => Some(tuple.with_field(*alias, extracted)),
                    None => match extracted {
                        Value::Tuple(inner) => tuple.concat(&inner).ok(),
                        Value::Null => match source_ty {
                            Some(NestedType::Tuple(t)) => {
                                let names: Vec<Sym> = t.attribute_syms().collect();
                                tuple.concat(&Tuple::null_padded(&names)).ok()
                            }
                            _ => Some(tuple.clone()),
                        },
                        // A non-tuple value at `source` is an evaluation
                        // error without an alias; the variant vanishes.
                        _ => None,
                    },
                }
            }
            StructuralCtx::TupleNest { attrs, into } => {
                let nested = tuple.project(attrs).unwrap_or_else(|_| Tuple::empty());
                Some(tuple.without(attrs).with_field(*into, Value::from_tuple(nested)))
            }
            StructuralCtx::NestAgg { func, attr, field, output } => {
                let nested = tuple.get(*attr).cloned().unwrap_or(Value::Null);
                let values: Vec<Value> = match &nested {
                    Value::Bag(b) => b
                        .iter_expanded()
                        .map(|element| match field {
                            Some(f) => element
                                .as_tuple()
                                .and_then(|t| t.get(*f).cloned())
                                .unwrap_or(Value::Null),
                            None => element.clone(),
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                let aggregated = func.apply(values.iter());
                let aggregated = match (&aggregated, func) {
                    // count over an empty / null collection is 0, not ⊥
                    (Value::Null, AggFunc::Count | AggFunc::CountDistinct) => Value::Int(0),
                    _ => aggregated,
                };
                Some(tuple.with_field(*output, aggregated))
            }
            StructuralCtx::Dedup => Some(tuple.clone()),
            StructuralCtx::Broken => None,
        }
    }
}

fn aggregate_tuple(key: &Tuple, aggs: &[nrab_algebra::AggSpec], members: &[Tuple]) -> Tuple {
    let mut result = key.clone();
    for agg in aggs {
        let values: Vec<Value> = members.iter().map(|t| agg.input.eval(t)).collect();
        let mut value = agg.func.apply(values.iter());
        if value.is_null() && agg.func.always_int() {
            value = Value::Int(0);
        }
        result = result.with_field(agg.output.clone(), value);
    }
    result
}

/// Applies a 1:1 structural operator to a single tuple by evaluating it over a
/// singleton bag, reusing the evaluator's semantics.
fn apply_to_single(node: &OpNode, tuple: &Tuple, db: &Database) -> AlgebraResult<Option<Tuple>> {
    let singleton = Bag::from_values([Value::from_tuple(tuple.clone())]);
    let inputs = vec![std::sync::Arc::new(singleton)];
    match apply_operator(node, &inputs, db) {
        Ok(result) => Ok(result.iter().next().and_then(|(v, _)| v.as_tuple().cloned())),
        // A structural operator can fail under an alternative (e.g. a
        // substituted attribute is absent); the tuple then simply does not
        // exist under that alternative.
        Err(_) => Ok(None),
    }
}

/// The outputs of an (outer-generalized) relation flatten for one input tuple:
/// `(output tuple, retained by the original flatten kind)`.
fn flatten_one(
    tuple: &Tuple,
    attr: &str,
    alias: Option<&str>,
    original_kind: FlattenKind,
    child_schema: &TupleType,
) -> AlgebraResult<Vec<(Tuple, bool)>> {
    let nested = tuple.get(attr).cloned().unwrap_or(Value::Null);
    let elements: Vec<(Value, u64)> = match &nested {
        Value::Bag(b) => b.iter().cloned().collect(),
        _ => Vec::new(),
    };
    if elements.is_empty() {
        // Outer-flatten padding; the original inner flatten would drop it.
        let padded = match alias {
            Some(alias) => tuple.with_field(alias, Value::Null),
            None => {
                let names: Vec<nested_data::Sym> = match child_schema.attribute(attr) {
                    Some(NestedType::Relation(t)) => t.attribute_syms().collect(),
                    _ => Vec::new(),
                };
                tuple.concat(&Tuple::null_padded(&names))?
            }
        };
        return Ok(vec![(padded, original_kind == FlattenKind::Outer)]);
    }
    let mut out = Vec::with_capacity(elements.len());
    for (element, _mult) in elements {
        let combined = match alias {
            Some(alias) => tuple.with_field(alias, element),
            None => match element {
                Value::Tuple(inner) => tuple.concat(&inner)?,
                other => tuple.with_field(format!("{attr}_value"), other),
            },
        };
        out.push((combined, true));
    }
    Ok(out)
}

/// Matches a NIP against a tuple without cloning it into a `Value`.
fn nip_matches_tuple(nip: &Nip, tuple: &Tuple) -> bool {
    match nip {
        Nip::Tuple(fields) => fields.iter().all(|(name, field_nip)| match tuple.get(*name) {
            Some(v) => field_nip.matches(v),
            None => false,
        }),
        Nip::Any => true,
        other => other.matches(&Value::from_tuple(tuple.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternative::OpSubstitution;
    use nested_data::NipCmp;
    use nrab_algebra::expr::CmpOp;
    use nrab_algebra::PlanBuilder;

    /// The person table of Figure 1a.
    fn person_db() -> Database {
        let address =
            TupleType::new([("city", NestedType::str()), ("year", NestedType::int())]).unwrap();
        let person_ty = TupleType::new([
            ("name", NestedType::str()),
            ("address1", NestedType::Relation(address.clone())),
            ("address2", NestedType::Relation(address)),
        ])
        .unwrap();
        let addr = |city: &str, year: i64| {
            Value::tuple([("city", Value::str(city)), ("year", Value::int(year))])
        };
        let peter = Value::tuple([
            ("name", Value::str("Peter")),
            ("address1", Value::bag([addr("NY", 2010), addr("LA", 2019), addr("LV", 2017)])),
            ("address2", Value::bag([addr("LA", 2010), addr("SF", 2018)])),
        ]);
        let sue = Value::tuple([
            ("name", Value::str("Sue")),
            ("address1", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
            ("address2", Value::bag([addr("LA", 2019), addr("NY", 2018)])),
        ]);
        let mut db = Database::new();
        db.add_relation("person", person_ty, Bag::from_values([peter, sue]));
        db
    }

    fn running_example_plan() -> QueryPlan {
        PlanBuilder::table("person")
            .inner_flatten("address2", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .project_attrs(&["name", "city"])
            .relation_nest(vec!["name"], "nList")
            .build()
            .unwrap()
    }

    /// Consistency NIPs of the running example (what schema backtracing
    /// produces): city = NY at every level where `city` exists, and the
    /// pushed-down address constraint at the table access.
    fn consistency_for(address_attr: &str) -> BTreeMap<OpId, Nip> {
        let city_ny = Nip::tuple([("city", Nip::val("NY"))]);
        let table_nip = Nip::tuple([(
            address_attr,
            Nip::bag([Nip::tuple([("city", Nip::val("NY")), ("year", Nip::Any)]), Nip::Star]),
        )]);
        BTreeMap::from([
            (0, table_nip),
            (1, city_ny.clone()),
            (2, city_ny.clone()),
            (3, city_ny.clone()),
            (4, Nip::tuple([("city", Nip::val("NY")), ("nList", Nip::bag([Nip::Any, Nip::Star]))])),
        ])
    }

    fn example_sas() -> Vec<SchemaAlternative> {
        vec![
            SchemaAlternative::original(consistency_for("address2")),
            SchemaAlternative::new(
                1,
                vec![OpSubstitution::new(1, "address2", "address1")],
                consistency_for("address1"),
            ),
        ]
    }

    fn trace_example() -> TraceResult {
        trace_plan(&running_example_plan(), &person_db(), &example_sas()).unwrap()
    }

    #[test]
    fn table_access_consistency_mirrors_figure_4() {
        let result = trace_example();
        let table = result.trace(0).unwrap();
        assert_eq!(table.len(), 2);
        // Peter: no NY in address2 (SA1: inconsistent), NY 2010 in address1 (SA2: consistent).
        let peter = table
            .tuples
            .iter()
            .find(|t| t.variant(0).unwrap().get("name") == Some(&Value::str("Peter")))
            .unwrap();
        assert!(!peter.flags(0).consistent);
        assert!(peter.flags(1).consistent);
        // Sue: NY in both address relations.
        let sue = table
            .tuples
            .iter()
            .find(|t| t.variant(0).unwrap().get("name") == Some(&Value::str("Sue")))
            .unwrap();
        assert!(sue.flags(0).consistent);
        assert!(sue.flags(1).consistent);
    }

    #[test]
    fn flatten_trace_mirrors_figure_5() {
        let result = trace_example();
        let flatten = result.trace(1).unwrap();
        // Peter contributes max(3, 2) merged rows, Sue max(2, 2): 5 rows total.
        assert_eq!(flatten.len(), 5);
        // Exactly one row is consistent under S1 (Sue's NY 2018 address2 entry).
        let consistent_s1: Vec<_> =
            flatten.tuples.iter().filter(|t| t.flags(0).consistent).collect();
        assert_eq!(consistent_s1.len(), 1);
        assert_eq!(consistent_s1[0].variant(0).unwrap().get("name"), Some(&Value::str("Sue")));
        // Under S1 only 4 rows are valid (Peter's address2 has 2 entries).
        assert_eq!(flatten.tuples.iter().filter(|t| t.flags(0).valid).count(), 4);
        assert_eq!(flatten.tuples.iter().filter(|t| t.flags(1).valid).count(), 5);
        // No padding rows: every valid row is retained by the inner flatten.
        assert!(flatten.tuples.iter().all(|t| !t.flags(0).valid || t.flags(0).retained));
    }

    #[test]
    fn selection_trace_mirrors_figure_6() {
        let result = trace_example();
        let selection = result.trace(2).unwrap();
        // The consistent S1 tuple (Sue, NY, 2018) is not retained by year ≥ 2019.
        let witness =
            selection.tuples.iter().find(|t| t.flags(0).consistent && t.flags(0).valid).unwrap();
        assert!(!witness.flags(0).retained);
        // Some valid tuple *is* retained (Sue's LA 2019).
        assert!(selection.tuples.iter().any(|t| t.flags(0).valid && t.flags(0).retained));
    }

    #[test]
    fn nesting_trace_mirrors_figure_7() {
        let result = trace_example();
        let nest = result.root_trace();
        // Groups across both SAs: NY, LA, SF (S1) and NY, LA, LV (S2) → 4 city groups.
        assert_eq!(nest.len(), 4);
        let ny = nest
            .tuples
            .iter()
            .find(|t| {
                t.variant(0)
                    .or(t.variant(1))
                    .map(|v| v.get("city") == Some(&Value::str("NY")))
                    .unwrap_or(false)
            })
            .unwrap();
        assert!(ny.flags(0).valid && ny.flags(0).consistent);
        assert!(ny.flags(1).valid && ny.flags(1).consistent);
        // The LV group only exists under S2 (it comes from address1).
        let lv = nest
            .tuples
            .iter()
            .find(|t| {
                t.variant(1).map(|v| v.get("city") == Some(&Value::str("LV"))).unwrap_or(false)
            })
            .unwrap();
        assert!(!lv.flags(0).valid);
        assert!(lv.flags(1).valid);
        assert!(result.has_consistent_output(0));
        assert!(result.has_consistent_output(1));
    }

    #[test]
    fn contributing_ids_reach_back_to_sue() {
        let result = trace_example();
        let contributing = result.contributing_ids(0);
        let table = result.trace(0).unwrap();
        let sue = table
            .tuples
            .iter()
            .find(|t| t.variant(0).unwrap().get("name") == Some(&Value::str("Sue")))
            .unwrap();
        let peter = table
            .tuples
            .iter()
            .find(|t| t.variant(0).unwrap().get("name") == Some(&Value::str("Peter")))
            .unwrap();
        assert!(contributing.contains(&sue.id));
        // Peter's tuple cannot contribute to the NY answer under S1...
        assert!(!contributing.contains(&peter.id));
        // ...but it can under S2 (address1 holds NY 2010).
        assert!(result.contributing_ids(1).contains(&peter.id));
    }

    #[test]
    fn selection_has_reparameterization_witness_under_both_sas() {
        let result = trace_example();
        let selection = result.trace(2).unwrap();
        for sa in 0..2 {
            let contributing = result.contributing_ids(sa);
            assert!(
                selection.has_reparameterization_witness(sa, &contributing),
                "selection must be a candidate under SA {sa}"
            );
        }
        // The flatten has no reparameterization witness (all its consistent
        // tuples are retained).
        let flatten = result.trace(1).unwrap();
        for sa in 0..2 {
            let contributing = result.contributing_ids(sa);
            assert!(!flatten.has_reparameterization_witness(sa, &contributing));
        }
    }

    #[test]
    fn join_tracing_pads_unmatched_tuples() {
        let mut db = Database::new();
        let r_ty = TupleType::new([("a", NestedType::int())]).unwrap();
        let s_ty =
            TupleType::new([("b", NestedType::int()), ("payload", NestedType::str())]).unwrap();
        db.add_relation(
            "r",
            r_ty,
            Bag::from_values([
                Value::tuple([("a", Value::int(1))]),
                Value::tuple([("a", Value::int(7))]),
            ]),
        );
        db.add_relation(
            "s",
            s_ty,
            Bag::from_values([
                Value::tuple([("b", Value::int(1)), ("payload", Value::str("x"))]),
                Value::tuple([("b", Value::int(2)), ("payload", Value::str("y"))]),
            ]),
        );
        let plan = PlanBuilder::table("r")
            .join(
                PlanBuilder::table("s"),
                JoinKind::Inner,
                Expr::cmp(Expr::attr("a"), CmpOp::Eq, Expr::attr("b")),
            )
            .build()
            .unwrap();
        // Why-not: a = 7 joined with anything.
        let consistency = BTreeMap::from([(plan.root.id, Nip::tuple([("a", Nip::val(7i64))]))]);
        let sas = vec![SchemaAlternative::original(consistency)];
        let result = trace_plan(&plan, &db, &sas).unwrap();
        let join = result.root_trace();
        // 1 matched pair + 1 unmatched left + 1 unmatched right.
        assert_eq!(join.len(), 3);
        let padded = join
            .tuples
            .iter()
            .find(|t| t.variant(0).map(|v| v.get("a") == Some(&Value::int(7))).unwrap_or(false))
            .unwrap();
        assert!(padded.flags(0).valid);
        assert!(padded.flags(0).consistent);
        assert!(!padded.flags(0).retained, "inner join does not retain the padded tuple");
        let contributing = result.contributing_ids(0);
        assert!(join.has_reparameterization_witness(0, &contributing));
    }

    #[test]
    fn group_aggregation_tracing_checks_relaxed_and_retained_values() {
        let db = person_db();
        // count addresses per person after a selection that keeps only year ≥ 2019.
        let plan = PlanBuilder::table("person")
            .inner_flatten("address1", None)
            .select(Expr::attr_cmp("year", CmpOp::Ge, 2019i64))
            .group_aggregate(
                vec!["name"],
                vec![nrab_algebra::AggSpec::new(
                    nrab_algebra::AggFunc::Count,
                    Expr::attr("city"),
                    "cnt",
                )],
            )
            .build()
            .unwrap();
        // Why not: Peter with cnt ≥ 2? (Original result: Peter has exactly 1.)
        let consistency = BTreeMap::from([(
            plan.root.id,
            Nip::tuple([("name", Nip::val("Peter")), ("cnt", Nip::pred(NipCmp::Ge, 2i64))]),
        )]);
        let sas = vec![SchemaAlternative::original(consistency)];
        let result = trace_plan(&plan, &db, &sas).unwrap();
        let root = result.root_trace();
        let peter = root
            .tuples
            .iter()
            .find(|t| t.variant(0).unwrap().get("name") == Some(&Value::str("Peter")))
            .unwrap();
        // Relaxed count (3 addresses) satisfies cnt ≥ 2, so the group is consistent.
        assert!(peter.flags(0).consistent);
        assert!(peter.flags(0).retained, "the group also exists in the original result");
    }

    #[test]
    fn tracing_requires_at_least_one_alternative() {
        let db = person_db();
        let plan = running_example_plan();
        assert!(trace_plan(&plan, &db, &[]).is_err());
    }
}
