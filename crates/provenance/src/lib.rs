//! # nrab-provenance
//!
//! Annotated data tracing for NRAB plans under *schema alternatives* — the
//! implementation of Step 3 (Section 5.3) of the paper's heuristic algorithm.
//!
//! The tracer evaluates a plan in a *generalized* form that keeps data a
//! reparameterized operator could produce (selections keep all tuples, inner
//! flattens become outer flattens, joins become full outer joins) and, for
//! every intermediate tuple and every schema alternative, records the
//! annotations of Section 5.3:
//!
//! * `id` — a fresh identifier per traced tuple, linked to the identifiers of
//!   the input tuples it was derived from (lineage),
//! * `valid` — whether the tuple exists under the schema alternative,
//! * `consistent` — whether the tuple (re-validated!) can still contribute to
//!   the missing answer, checked against the schema alternative's pushed-down
//!   NIP for this point of the plan,
//! * `retained` — whether the operator would keep/produce the tuple under its
//!   *original* parameters.
//!
//! The explanation engine (`whynot-core`) reads these annotations in its
//! `approximateMSRs` step (Algorithm 4).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alternative;
pub mod annotate;
pub mod trace;

pub use alternative::{OpSubstitution, SchemaAlternative};
pub use annotate::{GeneralizedTrace, OpTrace, SaFlags, TraceResult, TracedTuple};
pub use trace::{annotate_consistency, trace_plan, trace_plan_generalized};

/// A stable textual signature of the substitution sets of a slice of schema
/// alternatives, in order. Questions whose alternatives share this signature
/// (over the same plan and database) can share one generalized trace. Each
/// per-alternative signature is length-prefixed so the concatenation stays
/// injective regardless of the characters appearing in attribute paths.
pub fn substitution_signature(sas: &[SchemaAlternative]) -> String {
    sas.iter()
        .map(|sa| {
            let signature = sa.substitution_signature();
            format!("{}~{signature}", signature.len())
        })
        .collect()
}
